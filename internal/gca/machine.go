package gca

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Observer receives a notification after every committed step. The
// StepStats (and the slices inside it) are reused by the machine; an
// observer that retains data across steps must copy it.
type Observer interface {
	OnStep(f *Field, s *StepStats)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(f *Field, s *StepStats)

// OnStep implements Observer.
func (fn ObserverFunc) OnStep(f *Field, s *StepStats) { fn(f, s) }

// Machine executes a Rule over a Field in synchronous generations,
// optionally sharded over the process-global pool of worker goroutines
// (see pool.go). The result of a step is a pure function of the previous
// field state, so it is bit-identical for every worker count and for
// every scheduling mode.
//
// When the rule is a KernelPlanner, each step first asks it for the
// generation's active region and picks one of two scheduling modes:
//
//   - sweep: the whole field is sharded as usual, but each shard invokes
//     the bulk kernel only on its plan-active runs and bulk-copies the
//     passive gaps (a straight memmove per gap) into the next buffer,
//     then the buffers swap. Chosen for dense plans.
//   - span: only the plan's segments are computed — serially, since the
//     work is a sliver of the field — and committed in place; no shard
//     dispatch, no barrier, no full-field traffic. Chosen when the plan
//     covers at most 1/8 of the field, which turns the paper's
//     column-0-only generations from O(n²) steps into O(n) steps.
//
// Machines no longer own goroutines; Close only marks the machine
// unusable (Step after Close errors) and remains idempotent.
type Machine struct {
	field   *Field
	rule    Rule
	rule2   Rule2         // non-nil when rule is two-handed
	kernels KernelRule    // non-nil when rule provides bulk kernels
	planner KernelPlanner // non-nil when rule also declares active regions
	workers int

	collectCongestion bool
	capturePointers   bool
	fullSweep         bool // disable span mode (differential testing)
	observer          Observer
	hooks             StepHooks

	tick int64

	// Shard plan, fixed at construction: shard w covers cells
	// [lo[w], hi[w]). active is the number of shards; fields too small to
	// be worth sharding get a single shard regardless of the requested
	// worker count.
	lo, hi []int
	active int

	closed bool
	wg     sync.WaitGroup

	// Per-step job state, published by Step before shards are dispatched
	// to the global pool (the channel send orders the accesses).
	jobCtx    Context
	jobKernel Kernel
	jobPlan   Plan

	// Scratch buffers, reused across steps.
	stats       StepStats
	results     []rangeResult
	workerReads [][]int32
}

// Option configures a Machine.
type Option func(*Machine)

// WithWorkers sets the number of shards evaluated concurrently per step.
// Values < 1 select runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(m *Machine) { m.workers = n }
}

// WithCongestion enables per-target read counting (Table 1's δ column).
// It costs one int32 per cell per worker, and disables the bulk-kernel
// fast path.
func WithCongestion() Option {
	return func(m *Machine) { m.collectCongestion = true }
}

// WithPointerCapture records each cell's resolved pointer and whether its
// state changed — the inputs of the Figure-3 access-pattern renderer. It
// disables the bulk-kernel fast path.
func WithPointerCapture() Option {
	return func(m *Machine) { m.capturePointers = true }
}

// WithObserver attaches an observer notified after every step.
func WithObserver(o Observer) Option {
	return func(m *Machine) { m.observer = o }
}

// StepHooks are optional per-step fault-injection points. The zero value
// disables them at the cost of one nil check per step and one per shard
// evaluation — the chaos tier (internal/fault) threads its deterministic
// injector through them, and the fast-path benchmarks run with them
// unset. Hooks must not touch the Field: they model environmental
// faults (latency, stalls, transient failures), not state mutations.
type StepHooks struct {
	// BeforeStep runs before the step's shards are evaluated; it may
	// block (injected latency) and may return a non-nil error, which
	// aborts the step before any cell is read — the field still holds
	// the previous generation and the tick does not advance, so the
	// machine state stays consistent for the caller's error handling.
	BeforeStep func(ctx Context) error
	// WorkerStall runs before a shard's range is scanned (in whichever
	// goroutine evaluates it) and once, for shard 0, before a span-mode
	// commit; it may block. Stalls delay the step barrier but never
	// change results — each generation remains a pure function of the
	// previous field regardless of shard timing.
	WorkerStall func(ctx Context, worker int)
}

// WithStepHooks attaches fault-injection hooks to the machine.
func WithStepHooks(h StepHooks) Option {
	return func(m *Machine) { m.hooks = h }
}

// NewMachine builds a machine over the given field and rule.
func NewMachine(field *Field, rule Rule, opts ...Option) *Machine {
	if field == nil {
		panic("gca: nil field")
	}
	if rule == nil {
		panic("gca: nil rule")
	}
	m := &Machine{field: field, rule: rule}
	if r2, ok := rule.(Rule2); ok {
		m.rule2 = r2
	}
	if kr, ok := rule.(KernelRule); ok {
		m.kernels = kr
	}
	if kp, ok := rule.(KernelPlanner); ok {
		m.planner = kp
	}
	for _, o := range opts {
		o(m)
	}
	if m.workers < 1 {
		m.workers = runtime.GOMAXPROCS(0)
	}
	if m.workers > field.Len() && field.Len() > 0 {
		m.workers = field.Len()
	}
	if m.workers < 1 {
		m.workers = 1
	}
	m.planShards()

	n := field.Len()
	m.results = make([]rangeResult, m.active)
	if m.collectCongestion {
		m.stats.Reads = make([]int32, n)
		// One read-count buffer per shard that actually runs; shards
		// that never run would only add zero-filled buffers to every
		// zeroing and merge pass.
		m.workerReads = make([][]int32, m.active)
		for i := range m.workerReads {
			if i == 0 {
				m.workerReads[i] = m.stats.Reads // worker 0 writes the merge target directly
			} else {
				m.workerReads[i] = make([]int32, n)
			}
		}
	}
	if m.capturePointers {
		m.stats.Pointers = make([]int32, n)
		m.stats.Changed = make([]bool, n)
	}
	return m
}

// planShards fixes the per-shard cell ranges. The field size never
// changes, so the plan is computed once; fields below the sharding
// threshold collapse to a single shard evaluated by the caller.
func (m *Machine) planShards() {
	n := m.field.Len()
	if m.workers == 1 || n < 2*minChunk {
		m.lo, m.hi = []int{0}, []int{n}
		m.active = 1
		return
	}
	chunk := (n + m.workers - 1) / m.workers
	shards := (n + chunk - 1) / chunk
	m.lo = make([]int, 0, shards)
	m.hi = make([]int, 0, shards)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		m.lo = append(m.lo, lo)
		m.hi = append(m.hi, hi)
	}
	m.active = len(m.lo)
}

// Close marks the machine unusable: Step returns an error afterwards. It
// is idempotent. Machines own no goroutines — shard work runs on the
// process-global pool — so Close releases nothing.
func (m *Machine) Close() {
	m.closed = true
}

// Field returns the machine's field.
func (m *Machine) Field() *Field { return m.field }

// Tick returns the number of committed steps since construction.
func (m *Machine) Tick() int64 { return m.tick }

// errClosed is returned by Step after Close.
var errClosed = errors.New("gca: Step called on a closed Machine")

// Step executes one synchronous generation under ctx and commits it.
// The returned stats are valid until the next call to Step.
func (m *Machine) Step(ctx Context) (*StepStats, error) {
	if m.closed {
		return nil, errClosed
	}
	ctx.Tick = m.tick
	if m.hooks.BeforeStep != nil {
		if err := m.hooks.BeforeStep(ctx); err != nil {
			return nil, err
		}
	}
	m.stats.Ctx = ctx
	m.stats.Active = 0
	m.stats.TotalReads = 0
	m.stats.MaxCongestion = 0

	if m.collectCongestion {
		for _, wr := range m.workerReads {
			clear(wr)
		}
	}

	// The bulk-kernel fast path applies when the rule provides a kernel
	// for this generation and no instrumentation needs per-cell pointer
	// visibility. The choice depends only on ctx, so every shard of the
	// step takes the same path and the result stays bit-identical to the
	// generic one.
	size := m.field.Len()
	m.jobKernel = nil
	m.jobPlan = fullPlan(size)
	if m.kernels != nil && !m.collectCongestion && !m.capturePointers {
		m.jobKernel = m.kernels.KernelFor(ctx)
		if m.jobKernel != nil && m.planner != nil {
			p := m.planner.PlanFor(ctx)
			if err := p.validate(size); err != nil {
				return nil, err
			}
			if !p.Full(size) {
				m.jobPlan = p
			}
		}
	}

	// Span mode: the plan covers so little of the field that computing
	// its segments serially and committing them in place beats touching
	// all size cells (kernel sweep + gap copies + swap would). The
	// observable result — field contents, Active, TotalReads — is
	// bit-identical to a full sweep; only the schedule differs.
	if m.jobKernel != nil && !m.fullSweep && !m.jobPlan.Full(size) && m.jobPlan.Cells()*8 <= size {
		if err := m.runSpan(ctx); err != nil {
			return nil, err
		}
	} else if err := m.runSweep(ctx); err != nil {
		return nil, err
	}

	if m.collectCongestion {
		merged := m.stats.Reads
		for w := 1; w < len(m.workerReads); w++ {
			for i, v := range m.workerReads[w] {
				if v != 0 {
					merged[i] += v
				}
			}
		}
		maxC := int32(0)
		for _, v := range merged {
			if v > maxC {
				maxC = v
			}
		}
		m.stats.MaxCongestion = int(maxC)
	}

	m.tick++
	if m.observer != nil {
		m.observer.OnStep(m.field, &m.stats)
	}
	return &m.stats, nil
}

// runSpan evaluates only the plan's segments, serially, and commits them
// in place: the kernel writes next[segment] for every segment, and only
// then are the segments copied over cur (compute strictly before commit,
// since a kernel may read any cur cell — e.g. the shortcut generation
// reading other column-0 cells). Idle cells are never touched and the
// buffers do not swap: cur simply stays current outside the plan.
func (m *Machine) runSpan(ctx Context) error {
	if m.hooks.WorkerStall != nil {
		m.hooks.WorkerStall(ctx, 0)
	}
	cur, next, aux := m.field.cur, m.field.next, m.field.a
	k := m.jobKernel
	p := m.jobPlan
	if p.SegLen == 0 || p.Count == 0 {
		return nil // empty region: the generation provably changes nothing
	}
	for s := 0; s < p.Count; s++ {
		segLo := p.Lo + s*p.Stride
		active, reads, err := k(segLo, segLo+p.SegLen, cur, next, aux)
		if err != nil {
			return err
		}
		m.stats.Active += active
		m.stats.TotalReads += reads
	}
	for s := 0; s < p.Count; s++ {
		segLo := p.Lo + s*p.Stride
		m.field.commitRange(segLo, segLo+p.SegLen)
	}
	return nil
}

// runSweep evaluates the full field across the shard plan — dispatching
// shards 1..active-1 to the global pool and evaluating shard 0 (plus any
// shard the pool cannot take immediately) on the calling goroutine — and
// commits by buffer swap. Within each shard the kernel runs only on
// plan-active runs; passive gaps are bulk-copied forward.
func (m *Machine) runSweep(ctx Context) error {
	if m.active == 1 {
		m.results[0] = m.runShard(ctx, 0)
	} else {
		m.jobCtx = ctx
		ensurePool()
		for w := 1; w < m.active; w++ {
			m.wg.Add(1)
			select {
			case poolCh <- poolJob{m: m, shard: w}:
			default:
				// Pool saturated (or stalled by another machine's fault
				// hooks): evaluate the shard here so the step always
				// makes progress.
				m.results[w] = m.runShard(ctx, w)
				m.wg.Done()
			}
		}
		m.results[0] = m.runShard(ctx, 0)
		m.wg.Wait()
	}

	var err error
	for _, r := range m.results {
		m.stats.Active += r.active
		m.stats.TotalReads += r.reads
		if r.err != nil && err == nil {
			err = r.err
		}
	}
	if err != nil {
		return err
	}
	m.field.swap()
	return nil
}

// minChunk is the smallest per-shard range worth sharding.
const minChunk = 256

type rangeResult struct {
	active int
	reads  int
	err    error
}

// runShard evaluates shard w of the next generation: through the step's
// bulk kernel over the plan's active runs when a kernel is set (passive
// gaps are copied forward unchanged), and through the generic per-cell
// Pointer/Update path otherwise.
func (m *Machine) runShard(ctx Context, w int) rangeResult {
	if m.hooks.WorkerStall != nil {
		m.hooks.WorkerStall(ctx, w)
	}
	lo, hi := m.lo[w], m.hi[w]
	cur := m.field.cur
	next := m.field.next
	aux := m.field.a
	if k := m.jobKernel; k != nil {
		var res rangeResult
		m.jobPlan.forEachRun(lo, hi,
			func(runLo, runHi int) {
				if res.err != nil {
					return
				}
				active, reads, err := k(runLo, runHi, cur, next, aux)
				res.active += active
				res.reads += reads
				res.err = err
			},
			func(gapLo, gapHi int) {
				copy(next[gapLo:gapHi], cur[gapLo:gapHi])
			})
		return res
	}

	var res rangeResult
	n := len(cur)
	var reads []int32
	if m.collectCongestion {
		reads = m.workerReads[w]
	}
	for i := lo; i < hi; i++ {
		self := Cell{D: cur[i], A: aux[i]}
		p := m.rule.Pointer(ctx, i, self)
		var global Cell
		switch {
		case p == NoRead:
			global = self
		case p < 0 || p >= n:
			if res.err == nil {
				res.err = fmt.Errorf("gca: generation %d sub %d: cell %d computed out-of-range pointer %d (field size %d)",
					ctx.Generation, ctx.Sub, i, p, n)
			}
			continue
		default:
			global = Cell{D: cur[p], A: aux[p]}
			res.reads++
			if reads != nil {
				reads[p]++
			}
		}
		var d Value
		if m.rule2 != nil {
			p2 := m.rule2.Pointer2(ctx, i, self)
			var global2 Cell
			switch {
			case p2 == NoRead:
				global2 = self
			case p2 < 0 || p2 >= n:
				if res.err == nil {
					res.err = fmt.Errorf("gca: generation %d sub %d: cell %d computed out-of-range second pointer %d (field size %d)",
						ctx.Generation, ctx.Sub, i, p2, n)
				}
				continue
			default:
				global2 = Cell{D: cur[p2], A: aux[p2]}
				res.reads++
				if reads != nil {
					reads[p2]++
				}
			}
			d = m.rule2.Update2(ctx, i, self, global, global2)
		} else {
			d = m.rule.Update(ctx, i, self, global)
		}
		next[i] = d
		changed := d != self.D
		if changed {
			res.active++
		}
		if m.capturePointers {
			m.stats.Pointers[i] = int32(p)
			m.stats.Changed[i] = changed
		}
	}
	return res
}
