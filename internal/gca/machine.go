package gca

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Observer receives a notification after every committed step. The
// StepStats (and the slices inside it) are reused by the machine; an
// observer that retains data across steps must copy it.
type Observer interface {
	OnStep(f *Field, s *StepStats)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(f *Field, s *StepStats)

// OnStep implements Observer.
func (fn ObserverFunc) OnStep(f *Field, s *StepStats) { fn(f, s) }

// Machine executes a Rule over a Field in synchronous generations,
// optionally sharded over a persistent pool of worker goroutines. The
// result of a step is a pure function of the previous field state, so it
// is bit-identical for every worker count.
//
// A machine that steps with more than one worker owns pool goroutines;
// call Close when done with it. Close is idempotent, and a machine that
// never entered the parallel path owns no goroutines.
type Machine struct {
	field   *Field
	rule    Rule
	rule2   Rule2      // non-nil when rule is two-handed
	kernels KernelRule // non-nil when rule provides bulk kernels
	workers int

	collectCongestion bool
	capturePointers   bool
	observer          Observer
	hooks             StepHooks

	tick int64

	// Shard plan, fixed at construction: worker w evaluates cells
	// [lo[w], hi[w]). active is the number of non-empty shards; fields
	// too small to be worth sharding get a single shard regardless of
	// the requested worker count.
	lo, hi []int
	active int

	// Persistent worker pool, started lazily on the first parallel step.
	// Step publishes the job state below, releases workers 1..active-1
	// through their start channels, evaluates shard 0 itself, and joins
	// on wg — a two-phase barrier per step. Close closes the channels.
	poolStarted bool
	closed      bool
	start       []chan struct{}
	wg          sync.WaitGroup

	// Per-step job state, written by Step before the workers are
	// released (the channel send orders the accesses).
	jobCtx    Context
	jobKernel Kernel

	// Scratch buffers, reused across steps.
	stats       StepStats
	results     []rangeResult
	workerReads [][]int32
}

// Option configures a Machine.
type Option func(*Machine)

// WithWorkers sets the number of goroutines used per step. Values < 1
// select runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(m *Machine) { m.workers = n }
}

// WithCongestion enables per-target read counting (Table 1's δ column).
// It costs one int32 per cell per worker, and disables the bulk-kernel
// fast path.
func WithCongestion() Option {
	return func(m *Machine) { m.collectCongestion = true }
}

// WithPointerCapture records each cell's resolved pointer and whether its
// state changed — the inputs of the Figure-3 access-pattern renderer. It
// disables the bulk-kernel fast path.
func WithPointerCapture() Option {
	return func(m *Machine) { m.capturePointers = true }
}

// WithObserver attaches an observer notified after every step.
func WithObserver(o Observer) Option {
	return func(m *Machine) { m.observer = o }
}

// StepHooks are optional per-step fault-injection points. The zero value
// disables them at the cost of one nil check per step and one per shard
// evaluation — the chaos tier (internal/fault) threads its deterministic
// injector through them, and the fast-path benchmarks run with them
// unset. Hooks must not touch the Field: they model environmental
// faults (latency, stalls, transient failures), not state mutations.
type StepHooks struct {
	// BeforeStep runs before the step's shards are evaluated; it may
	// block (injected latency) and may return a non-nil error, which
	// aborts the step before any cell is read — the field still holds
	// the previous generation and the tick does not advance, so the
	// machine state stays consistent for the caller's error handling.
	BeforeStep func(ctx Context) error
	// WorkerStall runs in each shard-evaluating goroutine before it
	// scans its range; it may block. Stalls delay the step barrier but
	// never change results — each generation remains a pure function of
	// the previous field regardless of shard timing.
	WorkerStall func(ctx Context, worker int)
}

// WithStepHooks attaches fault-injection hooks to the machine.
func WithStepHooks(h StepHooks) Option {
	return func(m *Machine) { m.hooks = h }
}

// NewMachine builds a machine over the given field and rule.
func NewMachine(field *Field, rule Rule, opts ...Option) *Machine {
	if field == nil {
		panic("gca: nil field")
	}
	if rule == nil {
		panic("gca: nil rule")
	}
	m := &Machine{field: field, rule: rule}
	if r2, ok := rule.(Rule2); ok {
		m.rule2 = r2
	}
	if kr, ok := rule.(KernelRule); ok {
		m.kernels = kr
	}
	for _, o := range opts {
		o(m)
	}
	if m.workers < 1 {
		m.workers = runtime.GOMAXPROCS(0)
	}
	if m.workers > field.Len() && field.Len() > 0 {
		m.workers = field.Len()
	}
	if m.workers < 1 {
		m.workers = 1
	}
	m.planShards()

	n := field.Len()
	m.results = make([]rangeResult, m.active)
	if m.collectCongestion {
		m.stats.Reads = make([]int32, n)
		// One read-count buffer per shard that actually runs; shards
		// that never run would only add zero-filled buffers to every
		// zeroing and merge pass.
		m.workerReads = make([][]int32, m.active)
		for i := range m.workerReads {
			if i == 0 {
				m.workerReads[i] = m.stats.Reads // worker 0 writes the merge target directly
			} else {
				m.workerReads[i] = make([]int32, n)
			}
		}
	}
	if m.capturePointers {
		m.stats.Pointers = make([]int32, n)
		m.stats.Changed = make([]bool, n)
	}
	return m
}

// planShards fixes the per-worker cell ranges. The field size never
// changes, so the plan is computed once; fields below the sharding
// threshold collapse to a single shard evaluated by the caller.
func (m *Machine) planShards() {
	n := m.field.Len()
	if m.workers == 1 || n < 2*minChunk {
		m.lo, m.hi = []int{0}, []int{n}
		m.active = 1
		return
	}
	chunk := (n + m.workers - 1) / m.workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		m.lo = append(m.lo, lo)
		m.hi = append(m.hi, hi)
	}
	m.active = len(m.lo)
	m.start = make([]chan struct{}, m.active)
	for w := 1; w < m.active; w++ {
		m.start[w] = make(chan struct{}, 1)
	}
}

// startPool launches the persistent worker goroutines. Each worker owns
// one fixed shard and parks on its start channel between steps.
func (m *Machine) startPool() {
	m.poolStarted = true
	for w := 1; w < m.active; w++ {
		go func(w int) {
			for range m.start[w] {
				m.results[w] = m.runRange(m.jobCtx, m.lo[w], m.hi[w], w)
				m.wg.Done()
			}
		}(w)
	}
}

// Close releases the machine's worker goroutines. It is idempotent and
// safe on machines that never stepped. Step must not be called after
// Close.
func (m *Machine) Close() {
	if m.closed {
		return
	}
	m.closed = true
	if m.poolStarted {
		for w := 1; w < m.active; w++ {
			close(m.start[w])
		}
	}
}

// Field returns the machine's field.
func (m *Machine) Field() *Field { return m.field }

// Tick returns the number of committed steps since construction.
func (m *Machine) Tick() int64 { return m.tick }

// errClosed is returned by Step after Close.
var errClosed = errors.New("gca: Step called on a closed Machine")

// Step executes one synchronous generation under ctx and commits it.
// The returned stats are valid until the next call to Step.
func (m *Machine) Step(ctx Context) (*StepStats, error) {
	if m.closed {
		return nil, errClosed
	}
	ctx.Tick = m.tick
	if m.hooks.BeforeStep != nil {
		if err := m.hooks.BeforeStep(ctx); err != nil {
			return nil, err
		}
	}
	m.stats.Ctx = ctx
	m.stats.Active = 0
	m.stats.TotalReads = 0
	m.stats.MaxCongestion = 0

	if m.collectCongestion {
		for _, wr := range m.workerReads {
			clear(wr)
		}
	}

	// The bulk-kernel fast path applies when the rule provides a kernel
	// for this generation and no instrumentation needs per-cell pointer
	// visibility. The choice depends only on ctx, so every shard of the
	// step takes the same path and the result stays bit-identical to the
	// generic one.
	m.jobKernel = nil
	if m.kernels != nil && !m.collectCongestion && !m.capturePointers {
		m.jobKernel = m.kernels.KernelFor(ctx)
	}

	if m.active == 1 {
		m.results[0] = m.runRange(ctx, m.lo[0], m.hi[0], 0)
	} else {
		m.jobCtx = ctx
		if !m.poolStarted {
			m.startPool()
		}
		m.wg.Add(m.active - 1)
		for w := 1; w < m.active; w++ {
			m.start[w] <- struct{}{}
		}
		m.results[0] = m.runRange(ctx, m.lo[0], m.hi[0], 0)
		m.wg.Wait()
	}

	var err error
	for _, r := range m.results {
		m.stats.Active += r.active
		m.stats.TotalReads += r.reads
		if r.err != nil && err == nil {
			err = r.err
		}
	}
	if err != nil {
		return nil, err
	}

	if m.collectCongestion {
		merged := m.stats.Reads
		for w := 1; w < len(m.workerReads); w++ {
			for i, v := range m.workerReads[w] {
				if v != 0 {
					merged[i] += v
				}
			}
		}
		maxC := int32(0)
		for _, v := range merged {
			if v > maxC {
				maxC = v
			}
		}
		m.stats.MaxCongestion = int(maxC)
	}

	m.field.swap()
	m.tick++
	if m.observer != nil {
		m.observer.OnStep(m.field, &m.stats)
	}
	return &m.stats, nil
}

// minChunk is the smallest per-worker range worth sharding.
const minChunk = 256

type rangeResult struct {
	active int
	reads  int
	err    error
}

// runRange evaluates cells [lo, hi) of the next generation, through the
// step's bulk kernel when one is set and the generic per-cell
// Pointer/Update path otherwise.
func (m *Machine) runRange(ctx Context, lo, hi, worker int) rangeResult {
	if m.hooks.WorkerStall != nil {
		m.hooks.WorkerStall(ctx, worker)
	}
	cur := m.field.cur
	next := m.field.next
	aux := m.field.a
	if k := m.jobKernel; k != nil {
		active, reads, err := k(lo, hi, cur, next, aux)
		return rangeResult{active: active, reads: reads, err: err}
	}

	var res rangeResult
	n := len(cur)
	var reads []int32
	if m.collectCongestion {
		reads = m.workerReads[worker]
	}
	for i := lo; i < hi; i++ {
		self := Cell{D: cur[i], A: aux[i]}
		p := m.rule.Pointer(ctx, i, self)
		var global Cell
		switch {
		case p == NoRead:
			global = self
		case p < 0 || p >= n:
			if res.err == nil {
				res.err = fmt.Errorf("gca: generation %d sub %d: cell %d computed out-of-range pointer %d (field size %d)",
					ctx.Generation, ctx.Sub, i, p, n)
			}
			continue
		default:
			global = Cell{D: cur[p], A: aux[p]}
			res.reads++
			if reads != nil {
				reads[p]++
			}
		}
		var d Value
		if m.rule2 != nil {
			p2 := m.rule2.Pointer2(ctx, i, self)
			var global2 Cell
			switch {
			case p2 == NoRead:
				global2 = self
			case p2 < 0 || p2 >= n:
				if res.err == nil {
					res.err = fmt.Errorf("gca: generation %d sub %d: cell %d computed out-of-range second pointer %d (field size %d)",
						ctx.Generation, ctx.Sub, i, p2, n)
				}
				continue
			default:
				global2 = Cell{D: cur[p2], A: aux[p2]}
				res.reads++
				if reads != nil {
					reads[p2]++
				}
			}
			d = m.rule2.Update2(ctx, i, self, global, global2)
		} else {
			d = m.rule.Update(ctx, i, self, global)
		}
		next[i] = d
		changed := d != self.D
		if changed {
			res.active++
		}
		if m.capturePointers {
			m.stats.Pointers[i] = int32(p)
			m.stats.Changed[i] = changed
		}
	}
	return res
}
