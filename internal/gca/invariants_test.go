package gca

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Machine invariants, property-tested over random rules and field sizes:
//
//	I1: Σ over the congestion histogram of δ·cells == TotalReads
//	I2: Active ≤ field size; MaxCongestion ≤ TotalReads
//	I3: captured pointers are exactly the reads the histogram counts
//	I4: a rule that never changes d yields Active == 0 forever
func TestQuickMachineInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		// A random static pointer map with some NoReads.
		targets := make([]int, n)
		for i := range targets {
			if rng.Intn(5) == 0 {
				targets[i] = NoRead
			} else {
				targets[i] = rng.Intn(n)
			}
		}
		rule := RuleFuncs{
			PointerFunc: func(_ Context, idx int, _ Cell) int { return targets[idx] },
			UpdateFunc: func(_ Context, idx int, self, global Cell) Value {
				return self.D ^ global.D ^ Value(idx)
			},
		}
		field := NewField(n)
		for i := 0; i < n; i++ {
			field.SetData(i, Value(rng.Int63n(1000)))
		}
		m := NewMachine(field, rule,
			WithWorkers(1+rng.Intn(4)), WithCongestion(), WithPointerCapture())
		for step := 0; step < 3; step++ {
			s, err := m.Step(Context{Generation: step})
			if err != nil {
				return false
			}
			// I1
			sum := 0
			for delta, cells := range s.CongestionHistogram() {
				sum += delta * cells
			}
			if sum != s.TotalReads {
				return false
			}
			// I2
			if s.Active > n || s.MaxCongestion > s.TotalReads {
				return false
			}
			// I3
			reads := 0
			for _, p := range s.Pointers {
				if p != int32(NoRead) {
					reads++
				}
			}
			if reads != s.TotalReads {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityRuleNeverActive(t *testing.T) {
	n := 64
	field := NewField(n)
	for i := 0; i < n; i++ {
		field.SetData(i, Value(i*i))
	}
	identity := RuleFuncs{
		PointerFunc: func(_ Context, idx int, _ Cell) int { return (idx + 7) % n },
		UpdateFunc:  func(_ Context, _ int, self, _ Cell) Value { return self.D },
	}
	m := NewMachine(field, identity, WithWorkers(3))
	for step := 0; step < 5; step++ {
		s, err := m.Step(Context{})
		if err != nil {
			t.Fatal(err)
		}
		if s.Active != 0 {
			t.Fatalf("identity rule reported %d active cells", s.Active)
		}
	}
	for i := 0; i < n; i++ {
		if field.Data(i) != Value(i*i) {
			t.Fatal("identity rule changed the field")
		}
	}
}
