package gca

import (
	"math/rand"
	"testing"
)

// incrementRule adds 1 to every cell's data, no global reads.
var incrementRule = RuleFuncs{
	UpdateFunc: func(_ Context, _ int, self, _ Cell) Value { return self.D + 1 },
}

// jumpRule implements pointer jumping: every cell's data field is an index
// into the field, and each generation replaces it with the data of the
// cell it designates (d ← d*). This is the textbook GCA "shortcut" and the
// mechanism of the paper's generation 10.
var jumpRule = RuleFuncs{
	PointerFunc: func(_ Context, _ int, self Cell) int { return int(self.D) },
	UpdateFunc:  func(_ Context, _ int, _, global Cell) Value { return global.D },
}

func newFieldWithData(data []Value) *Field {
	f := NewField(len(data))
	for i, d := range data {
		f.SetData(i, d)
	}
	return f
}

func TestStepIncrement(t *testing.T) {
	f := newFieldWithData([]Value{0, 10, 20})
	m := NewMachine(f, incrementRule, WithWorkers(1))
	s, err := m.Step(Context{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []Value{1, 11, 21} {
		if got := f.Data(i); got != want {
			t.Errorf("cell %d = %d, want %d", i, got, want)
		}
	}
	if s.Active != 3 {
		t.Errorf("Active = %d, want 3", s.Active)
	}
	if s.TotalReads != 0 {
		t.Errorf("TotalReads = %d, want 0", s.TotalReads)
	}
	if m.Tick() != 1 {
		t.Errorf("Tick = %d, want 1", m.Tick())
	}
}

func TestStepReadsPreviousGeneration(t *testing.T) {
	// Shift-left rule: cell i reads cell i+1 (cyclically). If reads saw
	// the next generation this would collapse; synchronous semantics keep
	// it a clean rotation.
	n := 5
	shift := RuleFuncs{
		PointerFunc: func(_ Context, idx int, _ Cell) int { return (idx + 1) % n },
		UpdateFunc:  func(_ Context, _ int, _, global Cell) Value { return global.D },
	}
	f := newFieldWithData([]Value{0, 1, 2, 3, 4})
	m := NewMachine(f, shift, WithWorkers(1))
	if _, err := m.Step(Context{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if want := Value((i + 1) % n); f.Data(i) != want {
			t.Fatalf("after shift, cell %d = %d, want %d", i, f.Data(i), want)
		}
	}
}

func TestPointerJumpingConverges(t *testing.T) {
	// A linked list 0←1←2←…←9 (cell i points to i-1, cell 0 to itself).
	n := 10
	data := make([]Value, n)
	for i := 1; i < n; i++ {
		data[i] = Value(i - 1)
	}
	f := newFieldWithData(data)
	m := NewMachine(f, jumpRule, WithWorkers(2))
	steps := 0
	for {
		s, err := m.Step(Context{})
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if s.Active == 0 {
			break
		}
		if steps > n {
			t.Fatal("pointer jumping did not converge")
		}
	}
	for i := 0; i < n; i++ {
		if f.Data(i) != 0 {
			t.Fatalf("cell %d = %d, want 0", i, f.Data(i))
		}
	}
	// Doubling: convergence in ⌈log2(n-1)⌉ + 1 steps plus the final
	// all-quiet step. For a 9-link chain that is 5 productive steps.
	if steps > 6 {
		t.Fatalf("pointer jumping took %d steps, want ≤ 6", steps)
	}
}

func TestNoReadPassesSelf(t *testing.T) {
	r := RuleFuncs{
		PointerFunc: func(_ Context, _ int, _ Cell) int { return NoRead },
		UpdateFunc: func(_ Context, _ int, self, global Cell) Value {
			if self != global {
				return -1
			}
			return self.D
		},
	}
	f := newFieldWithData([]Value{7, 8})
	m := NewMachine(f, r, WithWorkers(1))
	s, err := m.Step(Context{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Data(0) == -1 || f.Data(1) == -1 {
		t.Fatal("NoRead did not pass self as global operand")
	}
	if s.TotalReads != 0 {
		t.Fatalf("NoRead counted as read: %d", s.TotalReads)
	}
	if s.Active != 0 {
		t.Fatalf("Active = %d, want 0", s.Active)
	}
}

func TestAuxFieldImmutable(t *testing.T) {
	f := NewField(2)
	f.SetCell(0, Cell{D: 1, A: 42})
	f.SetCell(1, Cell{D: 2, A: 43})
	m := NewMachine(f, incrementRule, WithWorkers(1))
	for i := 0; i < 3; i++ {
		if _, err := m.Step(Context{}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Cell(0).A != 42 || f.Cell(1).A != 43 {
		t.Fatal("aux field mutated by stepping")
	}
}

func TestOutOfRangePointer(t *testing.T) {
	bad := RuleFuncs{
		PointerFunc: func(_ Context, idx int, _ Cell) int {
			if idx == 3 {
				return 100
			}
			return NoRead
		},
	}
	f := NewField(5)
	m := NewMachine(f, bad, WithWorkers(1))
	if _, err := m.Step(Context{}); err == nil {
		t.Fatal("out-of-range pointer not reported")
	}
}

func TestCongestionCounting(t *testing.T) {
	// All n cells read cell 0.
	n := 8
	r := RuleFuncs{
		PointerFunc: func(_ Context, _ int, _ Cell) int { return 0 },
		UpdateFunc:  func(_ Context, _ int, self, _ Cell) Value { return self.D },
	}
	f := NewField(n)
	m := NewMachine(f, r, WithWorkers(3), WithCongestion())
	s, err := m.Step(Context{})
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxCongestion != n {
		t.Fatalf("MaxCongestion = %d, want %d", s.MaxCongestion, n)
	}
	if s.TotalReads != n {
		t.Fatalf("TotalReads = %d, want %d", s.TotalReads, n)
	}
	h := s.CongestionHistogram()
	if len(h) != 1 || h[n] != 1 {
		t.Fatalf("histogram = %v, want {%d:1}", h, n)
	}
	levels := s.CongestionLevels()
	if len(levels) != 1 || levels[0].Delta != n || levels[0].Cells != 1 {
		t.Fatalf("levels = %v", levels)
	}
}

func TestCongestionHistogramMultipleLevels(t *testing.T) {
	// Cells 0..3 read cell 0; cells 4..5 read cell 1; cell 6 reads cell 2;
	// cell 7 reads nothing.
	targets := []int{0, 0, 0, 0, 1, 1, 2, NoRead}
	r := RuleFuncs{
		PointerFunc: func(_ Context, idx int, _ Cell) int { return targets[idx] },
	}
	f := NewField(8)
	m := NewMachine(f, r, WithWorkers(4), WithCongestion())
	s, err := m.Step(Context{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.CongestionHistogram()
	if h[4] != 1 || h[2] != 1 || h[1] != 1 || len(h) != 3 {
		t.Fatalf("histogram = %v, want {4:1 2:1 1:1}", h)
	}
	levels := s.CongestionLevels()
	if len(levels) != 3 || levels[0].Delta != 4 || levels[2].Delta != 1 {
		t.Fatalf("levels not sorted descending: %v", levels)
	}
}

func TestPointerCapture(t *testing.T) {
	f := newFieldWithData([]Value{1, 0})
	m := NewMachine(f, jumpRule, WithWorkers(1), WithPointerCapture())
	s, err := m.Step(Context{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pointers[0] != 1 || s.Pointers[1] != 0 {
		t.Fatalf("Pointers = %v", s.Pointers)
	}
	// Cell 0 reads cell 1 (d*=0) so it changes 1→0; cell 1 reads cell 0
	// (d*=1) so it changes 0→1.
	if !s.Changed[0] || !s.Changed[1] {
		t.Fatalf("Changed = %v", s.Changed)
	}
}

func TestObserverCalledEveryStep(t *testing.T) {
	f := NewField(4)
	calls := 0
	obs := ObserverFunc(func(_ *Field, s *StepStats) {
		calls++
		if s.Ctx.Generation != 7 {
			t.Errorf("observer saw generation %d, want 7", s.Ctx.Generation)
		}
	})
	m := NewMachine(f, incrementRule, WithWorkers(1), WithObserver(obs))
	for i := 0; i < 5; i++ {
		if _, err := m.Step(Context{Generation: 7}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 5 {
		t.Fatalf("observer called %d times, want 5", calls)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	// A mildly complex rule: cell i reads cell (i*i+3) mod n and mixes.
	n := 1000
	mix := RuleFuncs{
		PointerFunc: func(_ Context, idx int, _ Cell) int { return (idx*idx + 3) % n },
		UpdateFunc: func(_ Context, idx int, self, global Cell) Value {
			return (self.D*31 + global.D + Value(idx)) % 1000003
		},
	}
	run := func(workers int) []Value {
		rng := rand.New(rand.NewSource(5))
		data := make([]Value, n)
		for i := range data {
			data[i] = Value(rng.Intn(1000))
		}
		f := newFieldWithData(data)
		m := NewMachine(f, mix, WithWorkers(workers), WithCongestion())
		for s := 0; s < 20; s++ {
			if _, err := m.Step(Context{Generation: s}); err != nil {
				t.Fatal(err)
			}
		}
		return f.Snapshot(nil)
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8, 16} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: cell %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestCongestionMatchesAcrossWorkerCounts(t *testing.T) {
	n := 2000
	r := RuleFuncs{
		PointerFunc: func(_ Context, idx int, _ Cell) int { return idx % 17 },
	}
	counts := func(workers int) map[int]int {
		f := NewField(n)
		m := NewMachine(f, r, WithWorkers(workers), WithCongestion())
		s, err := m.Step(Context{})
		if err != nil {
			t.Fatal(err)
		}
		return s.CongestionHistogram()
	}
	want := counts(1)
	got := counts(8)
	if len(want) != len(got) {
		t.Fatalf("histograms differ: %v vs %v", want, got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("histograms differ at δ=%d: %d vs %d", k, v, got[k])
		}
	}
}

func TestSnapshotAppend(t *testing.T) {
	f := newFieldWithData([]Value{4, 5})
	s := f.Snapshot(nil)
	if len(s) != 2 || s[0] != 4 || s[1] != 5 {
		t.Fatalf("Snapshot = %v", s)
	}
	s2 := f.Snapshot(s)
	if len(s2) != 4 {
		t.Fatalf("Snapshot append len = %d", len(s2))
	}
}

func TestNewMachineValidation(t *testing.T) {
	f := NewField(1)
	for name, fn := range map[string]func(){
		"nilField": func() { NewMachine(nil, incrementRule) },
		"nilRule":  func() { NewMachine(f, nil) },
		"negField": func() { NewField(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEmptyField(t *testing.T) {
	f := NewField(0)
	m := NewMachine(f, incrementRule)
	s, err := m.Step(Context{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Active != 0 {
		t.Fatal("empty field has active cells")
	}
}

func TestMinValue(t *testing.T) {
	if MinValue(3, 5) != 3 || MinValue(5, 3) != 3 {
		t.Fatal("MinValue wrong")
	}
	if MinValue(Inf, 7) != 7 || MinValue(7, Inf) != 7 {
		t.Fatal("MinValue does not treat Inf as identity")
	}
	if MinValue(Inf, Inf) != Inf {
		t.Fatal("MinValue(Inf, Inf) != Inf")
	}
}

func TestRuleFuncsDefaults(t *testing.T) {
	var r RuleFuncs
	if r.Pointer(Context{}, 0, Cell{}) != NoRead {
		t.Fatal("default Pointer should be NoRead")
	}
	if r.Update(Context{}, 0, Cell{D: 9}, Cell{}) != 9 {
		t.Fatal("default Update should keep d")
	}
}

// twoHandedSum is a Rule2 that adds both global operands.
type twoHandedSum struct{ n int }

func (r twoHandedSum) Pointer(_ Context, idx int, _ Cell) int  { return (idx + 1) % r.n }
func (r twoHandedSum) Pointer2(_ Context, idx int, _ Cell) int { return (idx + 2) % r.n }
func (r twoHandedSum) Update(_ Context, _ int, self, _ Cell) Value {
	return self.D // unused for two-handed rules
}
func (r twoHandedSum) Update2(_ Context, _ int, _, g1, g2 Cell) Value {
	return g1.D + g2.D
}

func TestTwoHandedRule(t *testing.T) {
	n := 5
	f := newFieldWithData([]Value{1, 2, 3, 4, 5})
	m := NewMachine(f, twoHandedSum{n: n}, WithWorkers(2), WithCongestion())
	s, err := m.Step(Context{})
	if err != nil {
		t.Fatal(err)
	}
	// Cell i becomes d[(i+1)%n] + d[(i+2)%n].
	want := []Value{2 + 3, 3 + 4, 4 + 5, 5 + 1, 1 + 2}
	for i := range want {
		if f.Data(i) != want[i] {
			t.Fatalf("cell %d = %d, want %d", i, f.Data(i), want[i])
		}
	}
	// Every cell is read twice (once per hand of two distinct readers).
	if s.TotalReads != 2*n {
		t.Fatalf("TotalReads = %d, want %d", s.TotalReads, 2*n)
	}
	h := s.CongestionHistogram()
	if h[2] != n {
		t.Fatalf("histogram = %v, want all cells at δ=2", h)
	}
}

type twoHandedBad struct{ n int }

func (r twoHandedBad) Pointer(_ Context, _ int, _ Cell) int  { return 0 }
func (r twoHandedBad) Pointer2(_ Context, _ int, _ Cell) int { return 99 }
func (r twoHandedBad) Update(_ Context, _ int, self, _ Cell) Value {
	return self.D
}
func (r twoHandedBad) Update2(_ Context, _ int, _, g1, _ Cell) Value { return g1.D }

func TestTwoHandedOutOfRange(t *testing.T) {
	f := NewField(3)
	m := NewMachine(f, twoHandedBad{n: 3}, WithWorkers(1))
	if _, err := m.Step(Context{}); err == nil {
		t.Fatal("out-of-range second pointer not reported")
	}
}

func TestTwoHandedNoReadSecondHand(t *testing.T) {
	r := RuleFuncs2{
		P1: func(_ Context, idx int, _ Cell) int { return NoRead },
		P2: func(_ Context, _ int, _ Cell) int { return NoRead },
		U2: func(_ Context, _ int, self, g1, g2 Cell) Value {
			if g1 != self || g2 != self {
				return -1
			}
			return self.D
		},
	}
	f := newFieldWithData([]Value{7})
	m := NewMachine(f, r, WithWorkers(1))
	if _, err := m.Step(Context{}); err != nil {
		t.Fatal(err)
	}
	if f.Data(0) != 7 {
		t.Fatal("NoRead hands did not pass self")
	}
}
