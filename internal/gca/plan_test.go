package gca

import (
	"fmt"
	"testing"
)

// planMember is the brute-force reference for plan geometry: whether cell
// i is active under p.
func planMember(p Plan, i int) bool {
	if p.SegLen <= 0 || p.Count <= 0 {
		return false
	}
	if i < p.Lo {
		return false
	}
	if p.Stride <= 0 {
		return i < p.Lo+p.SegLen
	}
	off := (i - p.Lo) % p.Stride
	seg := (i - p.Lo) / p.Stride
	return seg < p.Count && off < p.SegLen
}

// TestForEachRunMatchesMembership checks the run/gap decomposition
// against brute-force membership for a grid of plans and windows: every
// cell of [lo, hi) must be covered exactly once, actives exactly the
// member cells, and no run may span two segments.
func TestForEachRunMatchesMembership(t *testing.T) {
	plans := []Plan{
		{},                                        // zero plan: semantically full, mechanically all-gap here
		{Lo: 0, SegLen: 0, Stride: 4, Count: 5},   // empty region
		{Lo: 0, SegLen: 4, Stride: 4, Count: 5},   // contiguous full cover
		{Lo: 0, SegLen: 1, Stride: 4, Count: 5},   // column 0
		{Lo: 1, SegLen: 3, Stride: 4, Count: 5},   // all but column 0
		{Lo: 0, SegLen: 2, Stride: 4, Count: 5},   // first half of each row
		{Lo: 5, SegLen: 2, Stride: 7, Count: 3},   // offset, odd stride
		{Lo: 0, SegLen: 20, Stride: 20, Count: 1}, // one whole-field segment
	}
	for pi, p := range plans {
		size := 20
		for lo := 0; lo <= size; lo++ {
			for hi := lo; hi <= size; hi++ {
				covered := make([]int, size) // 0 = untouched, 1 = active, 2 = gap
				runs := 0
				p.forEachRun(lo, hi,
					func(rLo, rHi int) {
						runs++
						if rLo >= rHi {
							t.Fatalf("plan %d [%d,%d): empty active run [%d,%d)", pi, lo, hi, rLo, rHi)
						}
						if p.Stride > 0 && p.SegLen > 0 {
							if (rLo-p.Lo)/p.Stride != (rHi-1-p.Lo)/p.Stride {
								t.Fatalf("plan %d [%d,%d): run [%d,%d) spans two segments", pi, lo, hi, rLo, rHi)
							}
						}
						for i := rLo; i < rHi; i++ {
							covered[i]++
						}
					},
					func(gLo, gHi int) {
						if gLo >= gHi {
							t.Fatalf("plan %d [%d,%d): empty gap [%d,%d)", pi, lo, hi, gLo, gHi)
						}
						for i := gLo; i < gHi; i++ {
							covered[i] += 2
						}
					})
				for i := 0; i < size; i++ {
					want := 0
					if i >= lo && i < hi {
						want = 2
						if planMember(p, i) {
							want = 1
						}
					}
					if covered[i] != want {
						t.Fatalf("plan %d %+v window [%d,%d): cell %d coverage %d, want %d",
							pi, p, lo, hi, i, covered[i], want)
					}
				}
				_ = runs
			}
		}
	}
}

// TestPlanValidate pins the accept/reject boundary of plan validation.
func TestPlanValidate(t *testing.T) {
	cases := []struct {
		p    Plan
		size int
		ok   bool
	}{
		{Plan{}, 10, true}, // zero plan: whole field
		{Plan{Lo: 0, SegLen: 10, Stride: 10, Count: 1}, 10, true},
		{Plan{Lo: 0, SegLen: 1, Stride: 4, Count: 3}, 12, true},  // column 0
		{Plan{Lo: 0, SegLen: 0, Stride: 4, Count: 3}, 12, true},  // empty region
		{Plan{Lo: 0, SegLen: 5, Stride: 4, Count: 3}, 40, false}, // overlapping segments
		{Plan{Lo: 0, SegLen: 4, Stride: 4, Count: 4}, 12, false}, // past the end
		{Plan{Lo: -1, SegLen: 1, Stride: 4, Count: 1}, 12, false},
		{Plan{Lo: 11, SegLen: 1, Stride: 1, Count: 1}, 12, true}, // last cell
		{Plan{Lo: 12, SegLen: 1, Stride: 1, Count: 1}, 12, false},
	}
	for i, c := range cases {
		err := c.p.validate(c.size)
		if (err == nil) != c.ok {
			t.Errorf("case %d: validate(%+v, %d) = %v, want ok=%v", i, c.p, c.size, err, c.ok)
		}
	}
}

// TestPlanFullAndCells pins the Full/Cells helpers.
func TestPlanFullAndCells(t *testing.T) {
	if !(Plan{}).Full(7) {
		t.Error("zero plan is not Full")
	}
	if !(Plan{Lo: 0, SegLen: 7, Stride: 7, Count: 1}).Full(7) {
		t.Error("explicit whole-field plan is not Full")
	}
	if (Plan{Lo: 0, SegLen: 7, Stride: 7, Count: 1}).Full(8) {
		t.Error("7-cell plan reported Full for size 8")
	}
	if (Plan{Lo: 0, SegLen: 1, Stride: 4, Count: 3}).Full(12) {
		t.Error("column plan reported Full")
	}
	if got := (Plan{Lo: 1, SegLen: 3, Stride: 4, Count: 5}).Cells(); got != 15 {
		t.Errorf("Cells = %d, want 15", got)
	}
}

// TestSpanStepErrorLeavesFieldIntact pins span-mode error semantics: a
// kernel error aborts the step before any in-place commit, so the field
// still holds the previous generation afterwards (exactly like an
// aborted sweep).
func TestSpanStepErrorLeavesFieldIntact(t *testing.T) {
	const size = 64
	f := NewField(size)
	for i := 0; i < size; i++ {
		f.SetData(i, Value(i))
	}
	before := f.Snapshot(nil)
	m := NewMachine(f, errSpanRule{}, WithWorkers(1))
	defer m.Close()
	if _, err := m.Step(Context{}); err == nil {
		t.Fatal("kernel error not propagated from span mode")
	}
	after := f.Snapshot(nil)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("cell %d changed across an aborted span step: %d -> %d", i, before[i], after[i])
		}
	}
}

// errSpanRule declares a sparse plan (so span mode engages) whose kernel
// writes one segment and then fails on the second.
type errSpanRule struct{}

func (errSpanRule) Pointer(Context, int, Cell) int           { return NoRead }
func (errSpanRule) Update(_ Context, _ int, s, _ Cell) Value { return s.D }
func (errSpanRule) PlanFor(Context) Plan {
	return Plan{Lo: 0, SegLen: 1, Stride: 16, Count: 4}
}
func (errSpanRule) KernelFor(Context) Kernel {
	return func(lo, hi int, cur, next, _ []Value) (int, int, error) {
		if lo >= 16 {
			return 0, 0, fmt.Errorf("injected kernel failure at %d", lo)
		}
		for i := lo; i < hi; i++ {
			next[i] = cur[i] + 1000
		}
		return hi - lo, 0, nil
	}
}
