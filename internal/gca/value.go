// Package gca implements the Global Cellular Automaton (GCA) machine model
// of Hoffmann, Völkmann and Waldschmidt: a collection of cells that change
// state synchronously, where — unlike the classical CA — every cell selects
// one *global* neighbour per generation through a dynamically computed
// pointer and reads (never writes) that neighbour's state.
//
// The model implemented here is the variant used by the paper:
//
//   - one-handed: each cell addresses exactly one global neighbour per
//     generation (or none);
//   - uniform: all cells execute the same rule (position-dependent
//     behaviour is expressed inside the rule, as in the paper's Figure 2);
//   - pointer computed in the current generation ("=" assignment in the
//     paper), immediately before the global data is accessed;
//   - synchronous with double buffering: all reads observe the previous
//     generation's state, all writes go to the next, so the machine is a
//     CROW (concurrent-read owner-write) automaton and data races are
//     impossible by construction.
//
// The engine shards cells across goroutines for multicore stepping and can
// record, per generation, the number of active cells (cells whose state
// changed), the read congestion δ of every cell (how many cells read it),
// and the raw pointer values — the quantities reported in the paper's
// Table 1 and Figure 3.
package gca

import "math"

// Value is the data word stored in a cell's data field d. The paper's
// cells hold node numbers of O(log n) bits plus the distinguished value ∞;
// a 64-bit signed word with a MaxInt64 sentinel covers every practical n.
type Value int64

// Inf is the paper's "∞" — the identity element of the min reductions in
// generations 3 and 7.
const Inf Value = math.MaxInt64

// MinValue returns the smaller of a and b (∞-aware by construction, since
// Inf is the maximum representable Value).
func MinValue(a, b Value) Value {
	if a < b {
		return a
	}
	return b
}
