package gca

import "fmt"

// Cell is the externally visible state of one GCA cell: the data field d
// and the static auxiliary field a (the paper stores the adjacency-matrix
// entry A(i,j) there). The pointer field p is not part of the stored state
// in this machine because the paper's program computes it combinationally
// in the current generation (the "=" assignments of Figure 2).
type Cell struct {
	D Value // data field d, the value global neighbours read
	A Value // static auxiliary field a, fixed at initialisation
}

// Field is a linear array of cells with double buffering. Rules read the
// current buffer and the machine writes the next buffer, which makes every
// generation a pure function of the previous one.
//
// Two-dimensional layouts (the paper's (n+1)×n matrix) are expressed by
// the caller through index arithmetic; Field itself is shape-agnostic.
type Field struct {
	cur, next []Cell
}

// NewField returns a field of size cells, all zero.
func NewField(size int) *Field {
	if size < 0 {
		panic(fmt.Sprintf("gca: negative field size %d", size))
	}
	return &Field{
		cur:  make([]Cell, size),
		next: make([]Cell, size),
	}
}

// Len returns the number of cells.
func (f *Field) Len() int { return len(f.cur) }

// Cell returns the current state of cell idx.
func (f *Field) Cell(idx int) Cell { return f.cur[idx] }

// Data returns the current data field of cell idx.
func (f *Field) Data(idx int) Value { return f.cur[idx].D }

// SetCell overwrites the current state of cell idx. It is intended for
// initialisation (generation 0 inputs such as the adjacency field a);
// calling it between machine steps breaks the synchronous semantics only
// if done from concurrent goroutines.
func (f *Field) SetCell(idx int, c Cell) { f.cur[idx] = c }

// SetData overwrites the current data field of cell idx.
func (f *Field) SetData(idx int, d Value) { f.cur[idx].D = d }

// Snapshot appends the current data fields to dst and returns it; with a
// nil dst it allocates exactly Len() entries. Observers use it to capture
// generation-by-generation traces.
func (f *Field) Snapshot(dst []Value) []Value {
	if dst == nil {
		dst = make([]Value, 0, f.Len())
	}
	for _, c := range f.cur {
		dst = append(dst, c.D)
	}
	return dst
}

// swap commits the next buffer as the current one.
func (f *Field) swap() { f.cur, f.next = f.next, f.cur }
