package gca

import "fmt"

// Cell is the externally visible state of one GCA cell: the data field d
// and the static auxiliary field a (the paper stores the adjacency-matrix
// entry A(i,j) there). The pointer field p is not part of the stored state
// in this machine because the paper's program computes it combinationally
// in the current generation (the "=" assignments of Figure 2).
type Cell struct {
	D Value // data field d, the value global neighbours read
	A Value // static auxiliary field a, fixed at initialisation
}

// Field stores the cell state in struct-of-arrays form: the mutable data
// field d is double-buffered (rules read the current buffer, the machine
// writes the next buffer, so every generation is a pure function of the
// previous one), while the auxiliary field a — immutable after
// initialisation — is kept in a single shared slice that a step never
// copies. Compared to an array-of-Cell layout this halves the bytes a
// step moves and keeps the hot d values densely packed.
//
// Two-dimensional layouts (the paper's (n+1)×n matrix) are expressed by
// the caller through index arithmetic; Field itself is shape-agnostic.
type Field struct {
	cur, next []Value // data field d, double buffered
	a         []Value // static auxiliary field a, shared by both generations
}

// NewField returns a field of size cells, all zero.
func NewField(size int) *Field {
	if size < 0 {
		panic(fmt.Sprintf("gca: negative field size %d", size))
	}
	return &Field{
		cur:  make([]Value, size),
		next: make([]Value, size),
		a:    make([]Value, size),
	}
}

// Len returns the number of cells.
func (f *Field) Len() int { return len(f.cur) }

// Cell returns the current state of cell idx.
func (f *Field) Cell(idx int) Cell { return Cell{D: f.cur[idx], A: f.a[idx]} }

// Data returns the current data field of cell idx.
func (f *Field) Data(idx int) Value { return f.cur[idx] }

// Aux returns the static auxiliary field of cell idx.
func (f *Field) Aux(idx int) Value { return f.a[idx] }

// SetCell overwrites the current state of cell idx. It is intended for
// initialisation (generation 0 inputs such as the adjacency field a);
// calling it between machine steps breaks the synchronous semantics only
// if done from concurrent goroutines.
func (f *Field) SetCell(idx int, c Cell) {
	f.cur[idx] = c.D
	f.a[idx] = c.A
}

// SetData overwrites the current data field of cell idx.
func (f *Field) SetData(idx int, d Value) { f.cur[idx] = d }

// Snapshot appends the current data fields to dst and returns it; with a
// nil dst it allocates exactly Len() entries. Observers use it to capture
// generation-by-generation traces.
func (f *Field) Snapshot(dst []Value) []Value {
	if dst == nil {
		dst = make([]Value, 0, f.Len())
	}
	return append(dst, f.cur...)
}

// swap commits the next buffer as the current one.
func (f *Field) swap() { f.cur, f.next = f.next, f.cur }

// commitRange commits cells [lo, hi) in place by copying their freshly
// computed next values over the current buffer. Span-mode steps use it
// instead of swap: when a generation's active region is a sliver of the
// field, committing just that sliver avoids making every idle cell's
// next value authoritative (which a swap does, and which therefore
// requires a full-field copy-forward first). Callers must have finished
// all current-generation reads before the first commitRange of a step.
func (f *Field) commitRange(lo, hi int) { copy(f.cur[lo:hi], f.next[lo:hi]) }
