package gca

// Kernel is a bulk generation evaluator: it computes cells [lo, hi) of
// the next generation directly over the field's raw slices, replacing the
// per-cell Pointer/Update interface dispatch of the generic path. cur is
// the committed previous generation, next the buffer under construction,
// and a the static auxiliary field.
//
// A kernel must obey the same double-buffer discipline the machine
// enforces for rules: read cur (any index) and a, write exactly
// next[lo:hi], and never retain or alias the slices beyond the call. It
// returns the number of active cells (cells whose d changed) and the
// number of global reads it performed, matching what the generic path
// would have reported for the same cells, so the fast path is
// observationally identical step for step. A non-nil error aborts the
// step before the commit, exactly like an out-of-range pointer on the
// generic path.
//
// Kernels are invoked concurrently on disjoint [lo, hi) shards by the
// machine's worker pool; like rules they must be pure over their inputs.
type Kernel func(lo, hi int, cur, next, a []Value) (active, reads int, err error)

// KernelRule is the optional fast-path contract of a rule: a rule that
// also provides per-generation bulk kernels. When the machine runs
// without congestion collection and without pointer capture — the two
// instrumentation modes that need per-cell pointer visibility — it asks
// KernelFor for a kernel before every step and, if one is returned, runs
// it instead of the generic per-cell path.
type KernelRule interface {
	Rule
	// KernelFor returns the bulk kernel specialised for ctx (typically
	// switching on ctx.Generation and baking ctx.Sub into the closure),
	// or nil when this generation must use the generic path. The choice
	// must depend only on ctx, never on field contents, so that every
	// shard of a step takes the same path.
	KernelFor(ctx Context) Kernel
}
