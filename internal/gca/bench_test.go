package gca

import (
	"fmt"
	"testing"
)

// Engine microbenchmarks: raw synchronous-step throughput of the machine
// under different field sizes, worker counts, and instrumentation levels.

func benchRule(n int) Rule {
	return RuleFuncs{
		PointerFunc: func(_ Context, idx int, _ Cell) int { return (idx*7 + 13) % n },
		UpdateFunc: func(_ Context, idx int, self, global Cell) Value {
			return MinValue(self.D, global.D+1)
		},
	}
}

func BenchmarkStepThroughput(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		b.Run(fmt.Sprintf("cells=%d", n), func(b *testing.B) {
			f := NewField(n)
			for i := 0; i < n; i++ {
				f.SetData(i, Value(i))
			}
			m := NewMachine(f, benchRule(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Step(Context{}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(n) * 16) // two Cell buffers touched
		})
	}
}

func BenchmarkStepWorkers(b *testing.B) {
	n := 1 << 16
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			f := NewField(n)
			m := NewMachine(f, benchRule(n), WithWorkers(w))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Step(Context{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStepInstrumentation(b *testing.B) {
	n := 1 << 14
	configs := map[string][]Option{
		"bare":       nil,
		"congestion": {WithCongestion()},
		"pointers":   {WithPointerCapture()},
		"full":       {WithCongestion(), WithPointerCapture()},
	}
	for name, opts := range configs {
		b.Run(name, func(b *testing.B) {
			f := NewField(n)
			m := NewMachine(f, benchRule(n), opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Step(Context{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNoReadStep(b *testing.B) {
	// Pure local rule: the floor cost of a generation.
	n := 1 << 14
	f := NewField(n)
	m := NewMachine(f, RuleFuncs{
		UpdateFunc: func(_ Context, _ int, self, _ Cell) Value { return self.D + 1 },
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Step(Context{}); err != nil {
			b.Fatal(err)
		}
	}
}
