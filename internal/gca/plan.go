package gca

import "fmt"

// Plan declares the active region of one generation: the set of cells the
// rule can possibly write this step. Cells outside the plan provably keep
// their data field and perform no global reads, so the machine never has
// to evaluate them — it either bulk-copies them into the next buffer (the
// sweep path) or skips them entirely and commits only the active cells
// (the span path). The paper's Table 1 makes exactly this account: in
// most of the twelve Figure-2 generations the overwhelming majority of
// the (n+1)×n cells are idle.
//
// A plan is a segmented region: Count segments of SegLen cells each,
// their starting cells Stride apart, the first at Lo. Over the paper's
// row-major (n+1)×n layout every Figure-2 active region is a rectangle of
// rows and columns, which this shape expresses exactly — e.g. "column 0
// of the square field" is {Lo: 0, SegLen: 1, Stride: n, Count: n} and
// "the first n−2ˢ columns of every square row" is
// {Lo: 0, SegLen: n−2ˢ, Stride: n, Count: n}.
//
// The zero Plan means "the whole field": every cell is active.
type Plan struct {
	Lo     int // first cell of the first segment
	SegLen int // cells per segment
	Stride int // distance between segment starts; SegLen ≤ Stride
	Count  int // number of segments
}

// Full reports whether the plan declares the whole field active — either
// the zero Plan or an explicit single segment covering [0, size).
func (p Plan) Full(size int) bool {
	if p == (Plan{}) {
		return true
	}
	return p.Lo == 0 && p.Count == 1 && p.SegLen == size
}

// Cells returns the number of active cells the plan declares.
func (p Plan) Cells() int { return p.SegLen * p.Count }

// validate checks the plan against a field of the given size: segments
// must be non-overlapping, in ascending order, and inside [0, size). The
// zero Plan is always valid.
func (p Plan) validate(size int) error {
	if p == (Plan{}) {
		return nil
	}
	switch {
	case p.SegLen < 0 || p.Count < 0 || p.Lo < 0:
		return fmt.Errorf("gca: negative plan component %+v", p)
	case p.SegLen == 0 || p.Count == 0:
		return nil // empty region: nothing active
	case p.Count > 1 && p.Stride < p.SegLen:
		return fmt.Errorf("gca: plan segments overlap: stride %d < segment length %d", p.Stride, p.SegLen)
	}
	last := p.Lo + (p.Count-1)*p.Stride + p.SegLen
	if last > size {
		return fmt.Errorf("gca: plan %+v exceeds field size %d", p, size)
	}
	return nil
}

// fullPlan returns the explicit whole-field plan for a field of the given
// size.
func fullPlan(size int) Plan {
	return Plan{Lo: 0, SegLen: size, Stride: size, Count: 1}
}

// forEachRun decomposes the window [lo, hi) into maximal runs of
// plan-active cells and the passive gaps between them, in ascending
// order. Each active run lies within a single plan segment — the
// guarantee bulk kernels rely on to hoist per-segment operands out of
// their inner loops. It performs no allocation.
func (p Plan) forEachRun(lo, hi int, active func(runLo, runHi int), gap func(gapLo, gapHi int)) {
	if lo >= hi {
		return
	}
	if p.SegLen == 0 || p.Count == 0 {
		gap(lo, hi)
		return
	}
	pos := lo
	// First segment whose end can exceed lo.
	k := 0
	if p.Stride > 0 && lo > p.Lo {
		k = (lo - p.Lo) / p.Stride
	}
	for ; k < p.Count; k++ {
		segLo := p.Lo + k*p.Stride
		segHi := segLo + p.SegLen
		if segHi <= pos {
			continue
		}
		if segLo >= hi {
			break
		}
		if segLo > pos {
			gap(pos, min(segLo, hi))
			pos = segLo
			if pos >= hi {
				return
			}
		}
		runHi := min(segHi, hi)
		active(pos, runHi)
		pos = runHi
		if pos >= hi {
			return
		}
	}
	if pos < hi {
		gap(pos, hi)
	}
}

// KernelPlanner is the optional scheduling contract of a KernelRule: a
// rule that can also declare, per generation, the active region its
// kernels write. The machine uses the plan two ways on the fast path:
//
//   - sweep mode (dense plans): worker shards cover the whole field as
//     usual, but the kernel is invoked only on the active runs of each
//     shard while the passive gaps are bulk-copied row-at-a-time with
//     copy — no per-cell rule evaluation for idle cells.
//   - span mode (sparse plans, at most 1/8 of the field): only the active
//     cells are computed and then committed in place; idle cells are not
//     touched at all, so a generation that writes n cells of an n·(n+1)
//     field costs O(n), not O(n²).
//
// Either way the committed field, the active-cell count and the read
// count are bit-for-bit those of the full generic sweep — the plan is a
// scheduling fact, never a semantic one. PlanFor must depend only on ctx,
// and the region it returns must cover every cell the generation can
// write and every cell that performs a global read (cells outside do
// neither). Cross-checks live in two places: the lockstep batteries pin
// plan-on/plan-off/generic equality per step, and the congestion
// cross-check pins every plan at or below congestion.ActiveBound.
type KernelPlanner interface {
	KernelRule
	// PlanFor returns the active region for ctx. The zero Plan means the
	// whole field. Like KernelFor, the choice must depend only on ctx.
	PlanFor(ctx Context) Plan
}

// WithFullSweep disables span-mode scheduling: every step shards the
// whole field and commits by buffer swap, even when the rule declares a
// sparse active region (the plan still routes kernel invocations, so
// kernels see the same single-segment runs). The differential batteries
// use it to pin span mode observationally identical to the full sweep;
// production machines never need it.
func WithFullSweep() Option {
	return func(m *Machine) { m.fullSweep = true }
}
