package gca

import "sort"

// StepStats describes one synchronous generation (or sub-generation) of
// the machine. Active-cell and congestion figures are the quantities of
// the paper's Table 1; pointer capture feeds the Figure-3 access-pattern
// renderer.
type StepStats struct {
	// Ctx is the control context the step ran under.
	Ctx Context
	// Active is the number of cells whose data field changed in this
	// step — the paper's "active cells (modifying cell state)".
	Active int
	// TotalReads is the number of global read accesses performed.
	TotalReads int
	// MaxCongestion is max over cells of δ (number of concurrent reads of
	// that cell); 0 when congestion collection is disabled.
	MaxCongestion int
	// Reads holds δ per target cell. Nil unless the machine was built
	// WithCongestion. The slice is reused across steps; observers that
	// retain it must copy.
	Reads []int32
	// Pointers holds the resolved pointer per source cell (NoRead for
	// none). Nil unless the machine was built WithPointerCapture. Reused
	// across steps.
	Pointers []int32
	// Changed flags cells whose data field changed. Nil unless the
	// machine was built WithPointerCapture. Reused across steps.
	Changed []bool
}

// CongestionHistogram returns, for each congestion level δ ≥ 1, the number
// of cells that were read by exactly δ cells — the "# cells with read
// access / δ" pairs of Table 1. It returns nil when congestion collection
// is disabled.
func (s *StepStats) CongestionHistogram() map[int]int {
	if s.Reads == nil {
		return nil
	}
	h := make(map[int]int)
	for _, r := range s.Reads {
		if r > 0 {
			h[int(r)]++
		}
	}
	return h
}

// CongestionLevels returns the histogram as (δ, count) pairs sorted by
// descending δ, which is how Table 1 lists them.
func (s *StepStats) CongestionLevels() []CongestionLevel {
	h := s.CongestionHistogram()
	deltas := make([]int, 0, len(h))
	for d := range h {
		deltas = append(deltas, d)
	}
	sort.Ints(deltas)
	levels := make([]CongestionLevel, 0, len(deltas))
	for i := len(deltas) - 1; i >= 0; i-- {
		levels = append(levels, CongestionLevel{Delta: deltas[i], Cells: h[deltas[i]]})
	}
	return levels
}

// CongestionLevel is one row fragment of Table 1: Cells cells were each
// read by Delta concurrent readers.
type CongestionLevel struct {
	Delta int // δ, concurrent read accesses per cell
	Cells int // number of cells with that δ
}
