package gca

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBeforeStepAbortLeavesMachineConsistent is the hook contract the
// fault injector depends on: an error from BeforeStep aborts the step
// before any cell is read — the field still holds the previous
// generation, the tick does not advance, and the machine keeps working
// afterwards.
func TestBeforeStepAbortLeavesMachineConsistent(t *testing.T) {
	boom := errors.New("injected")
	fail := true
	f := newFieldWithData([]Value{0, 10, 20})
	m := NewMachine(f, incrementRule, WithWorkers(1), WithStepHooks(StepHooks{
		BeforeStep: func(Context) error {
			if fail {
				return boom
			}
			return nil
		},
	}))
	defer m.Close()

	if _, err := m.Step(Context{}); !errors.Is(err, boom) {
		t.Fatalf("Step error = %v, want %v", err, boom)
	}
	if m.Tick() != 0 {
		t.Fatalf("tick advanced to %d on an aborted step", m.Tick())
	}
	for i, want := range []Value{0, 10, 20} {
		if got := f.Data(i); got != want {
			t.Fatalf("cell %d = %d after aborted step, want %d", i, got, want)
		}
	}

	fail = false
	if _, err := m.Step(Context{}); err != nil {
		t.Fatalf("Step after aborted step: %v", err)
	}
	if m.Tick() != 1 {
		t.Fatalf("tick = %d after recovery step, want 1", m.Tick())
	}
	for i, want := range []Value{1, 11, 21} {
		if got := f.Data(i); got != want {
			t.Fatalf("cell %d = %d after recovery step, want %d", i, got, want)
		}
	}
}

// TestBeforeStepSeesTick checks the hook receives the machine's context
// with the tick filled in — the injector's decision streams index on it.
func TestBeforeStepSeesTick(t *testing.T) {
	var ticks []int64
	f := newFieldWithData([]Value{0, 0})
	m := NewMachine(f, incrementRule, WithWorkers(1), WithStepHooks(StepHooks{
		BeforeStep: func(ctx Context) error {
			ticks = append(ticks, ctx.Tick)
			return nil
		},
	}))
	defer m.Close()
	for i := 0; i < 3; i++ {
		if _, err := m.Step(Context{Generation: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i, tick := range ticks {
		if tick != int64(i) {
			t.Fatalf("hook %d saw tick %d, want %d", i, tick, i)
		}
	}
}

// TestWorkerStallNeverChangesResults stalls shards in an arbitrary
// pattern and checks the field history is bit-identical to an unstalled
// run at every worker count — stalls may delay the barrier, never the
// answer. The field is large enough (≥ 2·minChunk) to shard for real.
func TestWorkerStallNeverChangesResults(t *testing.T) {
	n := 4 * minChunk
	data := make([]Value, n)
	for i := range data {
		data[i] = Value((i * 7) % n)
	}
	run := func(workers int, stall func(Context, int)) []Value {
		f := newFieldWithData(data)
		var opts []Option
		opts = append(opts, WithWorkers(workers))
		if stall != nil {
			opts = append(opts, WithStepHooks(StepHooks{WorkerStall: stall}))
		}
		m := NewMachine(f, jumpRule, opts...)
		defer m.Close()
		for s := 0; s < 5; s++ {
			if _, err := m.Step(Context{}); err != nil {
				t.Fatal(err)
			}
		}
		return f.Snapshot(nil)
	}

	want := run(1, nil)
	var stalled atomic.Int64
	var mu sync.Mutex
	seen := map[int]bool{}
	for _, workers := range []int{1, 2, 4, 8} {
		got := run(workers, func(ctx Context, worker int) {
			stalled.Add(1)
			mu.Lock()
			seen[worker] = true
			mu.Unlock()
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: cell %d = %d with stalls, want %d", workers, i, got[i], want[i])
			}
		}
	}
	if stalled.Load() == 0 {
		t.Fatal("stall hook never ran")
	}
	if !seen[0] {
		t.Error("stall hook never saw shard 0 (the caller's shard)")
	}
	if len(seen) < 2 {
		t.Errorf("stall hook saw %d distinct workers, want ≥ 2 on a sharded field", len(seen))
	}
}

// TestZeroHooksAreNoop checks attaching the zero StepHooks changes
// nothing — the disabled path the production configuration takes.
func TestZeroHooksAreNoop(t *testing.T) {
	f := newFieldWithData([]Value{1, 2, 3})
	m := NewMachine(f, incrementRule, WithWorkers(1), WithStepHooks(StepHooks{}))
	defer m.Close()
	if _, err := m.Step(Context{}); err != nil {
		t.Fatal(err)
	}
	for i, want := range []Value{2, 3, 4} {
		if got := f.Data(i); got != want {
			t.Fatalf("cell %d = %d, want %d", i, got, want)
		}
	}
}

// TestBeforeStepErrorTextNamesGeneration pins the error surface: a
// failing hook's error is returned verbatim (wrapped by callers, not by
// the machine).
func TestBeforeStepErrorTextNamesGeneration(t *testing.T) {
	f := newFieldWithData([]Value{0})
	m := NewMachine(f, incrementRule, WithWorkers(1), WithStepHooks(StepHooks{
		BeforeStep: func(ctx Context) error {
			return fmt.Errorf("gen %d", ctx.Generation)
		},
	}))
	defer m.Close()
	_, err := m.Step(Context{Generation: 7})
	if err == nil || err.Error() != "gen 7" {
		t.Fatalf("err = %v, want gen 7 verbatim", err)
	}
}
