package gca

// NoRead is returned by Rule.Pointer when the cell does not access a
// global neighbour this generation. The machine then passes the cell's own
// state as the global operand, which matches the paper's convention that a
// cell can always see itself (p = index).
const NoRead = -1

// Context carries the control state the uniform rule may depend on. In
// hardware this is the global generation counter that addresses each
// cell's rule multiplexer (paper, Section 4).
type Context struct {
	// Generation is the program-defined generation identifier (0–11 for
	// the paper's program).
	Generation int
	// Sub is the sub-generation counter within a generation (the paper's
	// log n "sub generations" in generations 3, 7 and 10).
	Sub int
	// Iteration is the outer loop counter (the paper repeats steps 2–6
	// for log n iterations).
	Iteration int
	// Tick is the global step counter since machine reset, counting every
	// sub-generation once.
	Tick int64
}

// Rule is the uniform local rule of a one-handed GCA.
//
// For each cell, the machine first calls Pointer to resolve the global
// neighbour (the paper's p = … assignments), then calls Update with the
// cell's own state and the neighbour's state from the *previous*
// generation (d and d*), and stores the returned data value into the next
// generation. The auxiliary field a is immutable.
//
// Both methods must be pure functions of their arguments: they are invoked
// concurrently from multiple goroutines.
type Rule interface {
	// Pointer returns the linear index of the global cell read by cell
	// idx in this generation, or NoRead.
	Pointer(ctx Context, idx int, self Cell) int
	// Update returns the next data value d' of cell idx given its own
	// state (self = (a,d)) and the global cell's state (global = (a*,d*)).
	Update(ctx Context, idx int, self, global Cell) Value
}

// Rule2 is the uniform rule of a two-handed GCA — the paper's "two
// handed if two neighbors can be addressed". A machine whose rule also
// implements Rule2 resolves a second global read per generation and calls
// Update2 instead of Update. Both reads are counted in the congestion
// accounting.
type Rule2 interface {
	Rule
	// Pointer2 returns the second hand's global cell index, or NoRead.
	Pointer2(ctx Context, idx int, self Cell) int
	// Update2 returns the next data value given both global operands.
	// When a hand is NoRead its operand is the cell's own state.
	Update2(ctx Context, idx int, self, global1, global2 Cell) Value
}

// RuleFuncs2 adapts functions to the Rule2 interface, for tests and small
// two-handed programs. Nil P1/P2 mean NoRead; a nil U2 keeps d.
type RuleFuncs2 struct {
	P1 func(ctx Context, idx int, self Cell) int
	P2 func(ctx Context, idx int, self Cell) int
	U2 func(ctx Context, idx int, self, global1, global2 Cell) Value
}

// Pointer implements Rule.
func (r RuleFuncs2) Pointer(ctx Context, idx int, self Cell) int {
	if r.P1 == nil {
		return NoRead
	}
	return r.P1(ctx, idx, self)
}

// Pointer2 implements Rule2.
func (r RuleFuncs2) Pointer2(ctx Context, idx int, self Cell) int {
	if r.P2 == nil {
		return NoRead
	}
	return r.P2(ctx, idx, self)
}

// Update implements Rule; two-handed rules are dispatched through
// Update2, so this is never called by the machine.
func (r RuleFuncs2) Update(_ Context, _ int, self, _ Cell) Value { return self.D }

// Update2 implements Rule2.
func (r RuleFuncs2) Update2(ctx Context, idx int, self, global1, global2 Cell) Value {
	if r.U2 == nil {
		return self.D
	}
	return r.U2(ctx, idx, self, global1, global2)
}

// RuleFuncs adapts a pair of functions to the Rule interface, for tests
// and small programs.
type RuleFuncs struct {
	PointerFunc func(ctx Context, idx int, self Cell) int
	UpdateFunc  func(ctx Context, idx int, self, global Cell) Value
}

// Pointer implements Rule.
func (r RuleFuncs) Pointer(ctx Context, idx int, self Cell) int {
	if r.PointerFunc == nil {
		return NoRead
	}
	return r.PointerFunc(ctx, idx, self)
}

// Update implements Rule.
func (r RuleFuncs) Update(ctx Context, idx int, self, global Cell) Value {
	if r.UpdateFunc == nil {
		return self.D
	}
	return r.UpdateFunc(ctx, idx, self, global)
}
