package gca

import (
	"runtime"
	"sync"
)

// The stepping pool is process-global: a fixed set of goroutines sized to
// the machine's parallelism, shared by every Machine in the process. The
// previous design gave each Machine its own goroutines and per-worker
// start channels, which made machine construction cost — allocations and
// goroutine count — grow linearly with the requested worker count (the
// workers=8 alloc growth in the committed bench trajectory). A global
// pool amortises all of that to one-time process state: building a
// machine allocates the same three small slices no matter how many
// workers it will use.
//
// Dispatch is deadlock-free by construction: Step submits shard jobs with
// a non-blocking send and evaluates any shard the pool cannot take
// inline, so a stepping goroutine always makes progress even if every
// pool worker is blocked (e.g. by an injected WorkerStall fault in
// another machine). The pool is never shut down; its goroutines park on
// the empty channel, and Machine.Close remains a pure lifecycle flag.

// poolJob is one shard of one machine's step. The channel send
// happens-before the pool worker's read of the machine's published job
// state (jobCtx, jobKernel, jobPlan), and wg.Done/wg.Wait orders the
// result write back to the stepping goroutine.
type poolJob struct {
	m     *Machine
	shard int
}

var (
	poolOnce sync.Once
	poolCh   chan poolJob
)

// ensurePool starts the global workers on first parallel use.
func ensurePool() {
	poolOnce.Do(func() {
		size := runtime.GOMAXPROCS(0) - 1
		if size < 2 {
			size = 2
		}
		poolCh = make(chan poolJob, 4*size)
		for i := 0; i < size; i++ {
			go func() {
				for j := range poolCh {
					j.m.results[j.shard] = j.m.runShard(j.m.jobCtx, j.shard)
					j.m.wg.Done()
				}
			}()
		}
	})
}

// WarmPool eagerly starts the global stepping pool. Steady-state code
// never needs it — the pool starts itself on first parallel step — but
// goroutine-leak tests that pin "goroutines after == goroutines before"
// must start the pool before taking their baseline, since its workers are
// process-lifetime by design.
func WarmPool() {
	ensurePool()
}
