package gca

import (
	"fmt"
	"runtime"
	"testing"
)

// poolRule mixes local and global state so any lost or duplicated shard
// shows up in the final snapshot.
func poolRule(n int) Rule {
	return RuleFuncs{
		PointerFunc: func(ctx Context, idx int, _ Cell) int {
			if idx%11 == 3 {
				return NoRead
			}
			return (idx*31 + int(ctx.Tick)*7 + 5) % n
		},
		UpdateFunc: func(_ Context, idx int, self, global Cell) Value {
			return (self.D*131 + global.D*31 + Value(idx)) % 1000003
		},
	}
}

// TestPoolBitIdenticalAcrossWorkerCounts hammers the persistent worker
// pool: for every worker count from 1 up to (at least) GOMAXPROCS the
// field snapshot and per-step stats must be bit-identical to the
// single-worker run. The field is large enough to engage the parallel
// path, and the test is the designated -race workload for the pool's
// barrier handshake.
func TestPoolBitIdenticalAcrossWorkerCounts(t *testing.T) {
	const n = 4 * minChunk // comfortably above the sharding threshold
	const steps = 25

	type stepStat struct{ active, reads int }
	run := func(workers int) ([]Value, []stepStat) {
		f := NewField(n)
		for i := 0; i < n; i++ {
			f.SetData(i, Value(i*i%977))
		}
		m := NewMachine(f, poolRule(n), WithWorkers(workers))
		defer m.Close()
		stats := make([]stepStat, 0, steps)
		for s := 0; s < steps; s++ {
			st, err := m.Step(Context{Generation: s})
			if err != nil {
				t.Fatalf("workers=%d step %d: %v", workers, s, err)
			}
			stats = append(stats, stepStat{st.Active, st.TotalReads})
		}
		return f.Snapshot(nil), stats
	}

	counts := map[int]bool{1: true, 2: true, 3: true, 5: true, 8: true}
	for w := 1; w <= runtime.GOMAXPROCS(0); w++ {
		counts[w] = true
	}
	wantField, wantStats := run(1)
	for w := range counts {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			gotField, gotStats := run(w)
			for i := range wantField {
				if gotField[i] != wantField[i] {
					t.Fatalf("cell %d = %d, want %d", i, gotField[i], wantField[i])
				}
			}
			for s := range wantStats {
				if gotStats[s] != wantStats[s] {
					t.Fatalf("step %d stats = %+v, want %+v", s, gotStats[s], wantStats[s])
				}
			}
		})
	}
}

// TestPoolCloseLifecycle pins the Close contract: idempotent, safe on
// machines that never stepped, and Step fails cleanly afterwards.
func TestPoolCloseLifecycle(t *testing.T) {
	// A machine that engaged the parallel pool.
	f := NewField(4 * minChunk)
	m := NewMachine(f, poolRule(f.Len()), WithWorkers(4))
	if _, err := m.Step(Context{}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close() // idempotent
	if _, err := m.Step(Context{}); err == nil {
		t.Fatal("Step after Close did not fail")
	}

	// A machine below the sharding threshold never owns goroutines but
	// must honour the same lifecycle.
	small := NewMachine(NewField(8), incrementRule, WithWorkers(4))
	small.Close()
	if _, err := small.Step(Context{}); err == nil {
		t.Fatal("Step after Close on small machine did not fail")
	}

	// A machine that is built and closed without ever stepping.
	idle := NewMachine(NewField(4*minChunk), incrementRule, WithWorkers(4))
	idle.Close()
}

// TestPoolChurn creates, steps and closes many pooled machines in
// sequence; under -race this shakes out any handshake between Step's
// barrier and Close, and under normal runs it bounds goroutine growth:
// machines own no goroutines, so after the global pool is warm the count
// must stay flat no matter how many machines come and go.
func TestPoolChurn(t *testing.T) {
	WarmPool() // the global pool is process-lifetime; start it before the baseline
	before := runtime.NumGoroutine()
	for r := 0; r < 40; r++ {
		f := NewField(2 * minChunk)
		m := NewMachine(f, poolRule(f.Len()), WithWorkers(1+r%6))
		for s := 0; s < 3; s++ {
			if _, err := m.Step(Context{Generation: s}); err != nil {
				t.Fatal(err)
			}
		}
		m.Close()
	}
	// Give any in-flight pool hand-offs a moment to settle, then require
	// no pile-up.
	for i := 0; i < 100 && runtime.NumGoroutine() > before+2; i++ {
		runtime.Gosched()
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines grew from %d to %d; pool leak", before, g)
	}
}

// TestPoolCongestionAcrossWorkerCounts repeats the bit-identical check
// with congestion instrumentation on, which exercises the per-worker read
// buffers and their merge.
func TestPoolCongestionAcrossWorkerCounts(t *testing.T) {
	const n = 3 * minChunk
	run := func(workers int) (map[int]int, int) {
		f := NewField(n)
		m := NewMachine(f, poolRule(n), WithWorkers(workers), WithCongestion())
		defer m.Close()
		var last *StepStats
		for s := 0; s < 4; s++ {
			st, err := m.Step(Context{Generation: s})
			if err != nil {
				t.Fatal(err)
			}
			last = st
		}
		return last.CongestionHistogram(), last.MaxCongestion
	}
	wantH, wantMax := run(1)
	for _, w := range []int{2, 4, 7} {
		gotH, gotMax := run(w)
		if gotMax != wantMax || len(gotH) != len(wantH) {
			t.Fatalf("workers=%d: histogram %v max %d, want %v max %d", w, gotH, gotMax, wantH, wantMax)
		}
		for k, v := range wantH {
			if gotH[k] != v {
				t.Fatalf("workers=%d: δ=%d count %d, want %d", w, k, gotH[k], v)
			}
		}
	}
}
