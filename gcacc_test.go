package gcacc

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"gcacc/internal/graph"
)

func TestFacadeQuickstart(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	labels, err := ConnectedComponents(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 3, 4, 4}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestAllEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(24)
		g := graph.Gnp(n, rng.Float64()/2, rng)
		engines := Engines()
		var results [][]int
		for _, e := range engines {
			rep, err := ConnectedComponentsWith(g, Options{Engine: e})
			if err != nil {
				t.Fatalf("%s: %v", e, err)
			}
			results = append(results, rep.Labels)
		}
		for i := 0; i < n; i++ {
			for e := 1; e < len(results); e++ {
				if results[0][i] != results[e][i] {
					t.Fatalf("trial %d: engine %s disagrees with gca at vertex %d: %d vs %d",
						trial, engines[e], i, results[e][i], results[0][i])
				}
			}
		}
	}
}

func TestReportFields(t *testing.T) {
	g := NewGraph(8)
	g.AddEdge(0, 7)
	rep, err := ConnectedComponentsWith(g, Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Components != 7 {
		t.Fatalf("Components = %d, want 7", rep.Components)
	}
	if rep.Generations != TotalGenerations(8) {
		t.Fatalf("Generations = %d, want %d", rep.Generations, TotalGenerations(8))
	}
	if len(rep.Records) != rep.Generations {
		t.Fatalf("Records = %d, want %d", len(rep.Records), rep.Generations)
	}

	prep, err := ConnectedComponentsWith(g, Options{Engine: EnginePRAM})
	if err != nil {
		t.Fatal(err)
	}
	if prep.PRAMSteps == 0 {
		t.Fatal("PRAM report missing step count")
	}
}

func TestTransitiveClosureFacade(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c, err := TransitiveClosure(g)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Reachable(0, 2) || !c.Reachable(2, 0) || !c.Reachable(3, 3) {
		t.Fatal("closure missing reachability")
	}
	if c.Reachable(0, 3) {
		t.Fatal("closure connects separate components")
	}
	labels := c.ComponentLabels()
	want := graph.ConnectedComponentsUnionFind(g)
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("closure labels %v, want %v", labels, want)
		}
	}
}

// TestEngineRegistration is the table the whole engine zoo hangs off: a
// new engine is fully registered only when its row is here AND
// String/Valid/Sparse/Engines/EngineNames/ParseEngine and the dispatch
// all agree. Half-registering an engine (say, adding the enum constant
// but not the Engines() entry) breaks this table one way or another.
func TestEngineRegistration(t *testing.T) {
	table := []struct {
		engine Engine
		index  int
		name   string
		sparse bool
	}{
		{EngineGCA, 0, "gca", false},
		{EnginePRAM, 1, "pram", false},
		{EngineSequential, 2, "sequential", true},
		{EngineNCell, 3, "ncell", false},
		{EngineHardware, 4, "hardware", false},
		{EngineLiuTarjan, 5, "liutarjan", true},
		{EngineLogDiameter, 6, "logdiameter", true},
	}
	if len(table) != len(Engines()) {
		t.Fatalf("registration table has %d rows, Engines() has %d — update both together",
			len(table), len(Engines()))
	}
	for _, row := range table {
		if int(row.engine) != row.index {
			t.Errorf("%s: enum value %d, table says %d", row.name, int(row.engine), row.index)
		}
		if got := row.engine.String(); got != row.name {
			t.Errorf("engine %d: String() = %q, want %q", row.index, got, row.name)
		}
		if !row.engine.Valid() {
			t.Errorf("%s: Valid() = false", row.name)
		}
		if got := row.engine.Sparse(); got != row.sparse {
			t.Errorf("%s: Sparse() = %v, want %v", row.name, got, row.sparse)
		}
		if Engines()[row.index] != row.engine {
			t.Errorf("Engines()[%d] = %s, want %s", row.index, Engines()[row.index], row.name)
		}
		if EngineNames()[row.index] != row.name {
			t.Errorf("EngineNames()[%d] = %q, want %q", row.index, EngineNames()[row.index], row.name)
		}
		if got, err := ParseEngine(row.name); err != nil || got != row.engine {
			t.Errorf("ParseEngine(%q) = %v, %v", row.name, got, err)
		}
	}
	for _, bad := range []Engine{Engine(len(table)), Engine(-1), Engine(99)} {
		if bad.Valid() {
			t.Errorf("Engine(%d).Valid() = true", int(bad))
		}
		if bad.String() != "unknown" {
			t.Errorf("Engine(%d).String() = %q, want unknown", int(bad), bad.String())
		}
		if bad.Sparse() {
			t.Errorf("Engine(%d).Sparse() = true", int(bad))
		}
	}
}

func TestParseEngine(t *testing.T) {
	for _, e := range Engines() {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Fatalf("ParseEngine(%q) = %v, %v; want %v", e.String(), got, err, e)
		}
		if !e.Valid() {
			t.Fatalf("engine %s reported invalid", e)
		}
	}
	for _, bad := range []string{"", "GCA", "unknown", "bfs"} {
		if _, err := ParseEngine(bad); err == nil {
			t.Fatalf("ParseEngine(%q) accepted an unknown name", bad)
		}
	}
	if Engine(9).Valid() || Engine(-1).Valid() {
		t.Fatal("out-of-range engine reported valid")
	}
}

func TestEngineNamesMatchEngines(t *testing.T) {
	names := EngineNames()
	engines := Engines()
	if len(names) != len(engines) {
		t.Fatalf("EngineNames has %d entries, Engines has %d", len(names), len(engines))
	}
	for i, e := range engines {
		if names[i] != e.String() {
			t.Errorf("EngineNames[%d] = %q, want %q", i, names[i], e.String())
		}
		if got, err := ParseEngine(names[i]); err != nil || got != e {
			t.Errorf("ParseEngine(EngineNames[%d]) = %v, %v; want %v", i, got, err, e)
		}
		if int(e) != i {
			t.Errorf("Engines()[%d] = %d; the slice must be in declaration order", i, int(e))
		}
	}
	// The boundary engine just past the last valid one must be invalid:
	// Valid() and Engines() have to agree on where the zoo ends.
	if Engine(len(engines)).Valid() {
		t.Fatalf("Engine(%d) is past the end of Engines() but reports valid", len(engines))
	}
	if !Engine(len(engines) - 1).Valid() {
		t.Fatalf("last engine in Engines() reports invalid")
	}
}

func TestInvalidEngineRejected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	if _, err := ConnectedComponentsWith(g, Options{Engine: Engine(9)}); err == nil {
		t.Fatal("out-of-range engine must be an error, not a silent GCA run")
	}
	if _, err := ConnectedComponentsWith(g, Options{Engine: Engine(-3)}); err == nil {
		t.Fatal("negative engine must be an error")
	}
}

func TestContextCancelAbortsEngines(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.Gnp(32, 0.1, rand.New(rand.NewSource(5)))
	for _, e := range Engines() {
		if _, err := ConnectedComponentsWithContext(ctx, g, Options{Engine: e}); !errors.Is(err, context.Canceled) {
			t.Errorf("engine %s with cancelled ctx: err = %v, want context.Canceled", e, err)
		}
	}
}

// TestSparseFacade covers the sparse entry point: sparse engines run
// natively, dense engines densify below the cutoff and are refused
// above it, and labels always match the sequential ground truth.
func TestSparseFacade(t *testing.T) {
	g := NewSparseGraph(10)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(5, 6)
	want, err := ConnectedComponentsSparse(context.Background(), g, Options{Engine: EngineSequential})
	if err != nil {
		t.Fatal(err)
	}
	if want.Components != 7 {
		t.Fatalf("Components = %d, want 7", want.Components)
	}
	for _, e := range Engines() {
		rep, err := ConnectedComponentsSparse(context.Background(), g, Options{Engine: e})
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		for v := range want.Labels {
			if rep.Labels[v] != want.Labels[v] {
				t.Fatalf("%s: label[%d] = %d, want %d", e, v, rep.Labels[v], want.Labels[v])
			}
		}
		if e == EngineLiuTarjan || e == EngineLogDiameter {
			if rep.Generations == 0 {
				t.Fatalf("%s: no round count in Report.Generations", e)
			}
		}
	}

	big := NewSparseGraph(DenseCutoff + 1)
	big.AddEdge(0, DenseCutoff)
	if _, err := ConnectedComponentsSparse(context.Background(), big, Options{Engine: EngineGCA}); err == nil {
		t.Fatal("dense-only engine above the cutoff must be refused")
	}
	rep, err := ConnectedComponentsSparse(context.Background(), big, Options{Engine: EngineLiuTarjan})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Labels[DenseCutoff] != 0 || rep.Components != DenseCutoff {
		t.Fatalf("sparse engine above the cutoff: components=%d label=%d", rep.Components, rep.Labels[DenseCutoff])
	}
	if _, err := ConnectedComponentsSparse(context.Background(), g, Options{Engine: Engine(42)}); err == nil {
		t.Fatal("invalid engine accepted by the sparse entry point")
	}
}

// TestParseEdgeStreamFacade pins the re-exported streaming parser.
func TestParseEdgeStreamFacade(t *testing.T) {
	g, err := ParseEdgeStream(strings.NewReader("3 2\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("parsed n=%d m=%d", g.N(), g.M())
	}
}

func TestMinimumSpanningForestFacade(t *testing.T) {
	g := NewWeightedGraph(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 9)
	g.AddEdge(2, 3, 1)
	f, err := MinimumSpanningForest(g)
	if err != nil {
		t.Fatal(err)
	}
	if f.Weight != 8 || len(f.Edges) != 3 {
		t.Fatalf("MSF = %+v, want weight 8 with 3 edges", f)
	}
}
