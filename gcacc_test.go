package gcacc

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"gcacc/internal/graph"
)

func TestFacadeQuickstart(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	labels, err := ConnectedComponents(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 3, 4, 4}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestAllEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(24)
		g := graph.Gnp(n, rng.Float64()/2, rng)
		engines := []Engine{EngineGCA, EnginePRAM, EngineSequential, EngineNCell, EngineHardware}
		var results [][]int
		for _, e := range engines {
			rep, err := ConnectedComponentsWith(g, Options{Engine: e})
			if err != nil {
				t.Fatalf("%s: %v", e, err)
			}
			results = append(results, rep.Labels)
		}
		for i := 0; i < n; i++ {
			for e := 1; e < len(results); e++ {
				if results[0][i] != results[e][i] {
					t.Fatalf("trial %d: engine %s disagrees with gca at vertex %d: %d vs %d",
						trial, engines[e], i, results[e][i], results[0][i])
				}
			}
		}
	}
}

func TestReportFields(t *testing.T) {
	g := NewGraph(8)
	g.AddEdge(0, 7)
	rep, err := ConnectedComponentsWith(g, Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Components != 7 {
		t.Fatalf("Components = %d, want 7", rep.Components)
	}
	if rep.Generations != TotalGenerations(8) {
		t.Fatalf("Generations = %d, want %d", rep.Generations, TotalGenerations(8))
	}
	if len(rep.Records) != rep.Generations {
		t.Fatalf("Records = %d, want %d", len(rep.Records), rep.Generations)
	}

	prep, err := ConnectedComponentsWith(g, Options{Engine: EnginePRAM})
	if err != nil {
		t.Fatal(err)
	}
	if prep.PRAMSteps == 0 {
		t.Fatal("PRAM report missing step count")
	}
}

func TestTransitiveClosureFacade(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c, err := TransitiveClosure(g)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Reachable(0, 2) || !c.Reachable(2, 0) || !c.Reachable(3, 3) {
		t.Fatal("closure missing reachability")
	}
	if c.Reachable(0, 3) {
		t.Fatal("closure connects separate components")
	}
	labels := c.ComponentLabels()
	want := graph.ConnectedComponentsUnionFind(g)
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("closure labels %v, want %v", labels, want)
		}
	}
}

func TestEngineString(t *testing.T) {
	if EngineGCA.String() != "gca" || EnginePRAM.String() != "pram" ||
		EngineSequential.String() != "sequential" || EngineNCell.String() != "ncell" ||
		EngineHardware.String() != "hardware" || Engine(9).String() != "unknown" {
		t.Fatal("engine names wrong")
	}
}

func TestParseEngine(t *testing.T) {
	for _, e := range Engines() {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Fatalf("ParseEngine(%q) = %v, %v; want %v", e.String(), got, err, e)
		}
		if !e.Valid() {
			t.Fatalf("engine %s reported invalid", e)
		}
	}
	for _, bad := range []string{"", "GCA", "unknown", "bfs"} {
		if _, err := ParseEngine(bad); err == nil {
			t.Fatalf("ParseEngine(%q) accepted an unknown name", bad)
		}
	}
	if Engine(9).Valid() || Engine(-1).Valid() {
		t.Fatal("out-of-range engine reported valid")
	}
}

func TestEngineNamesMatchEngines(t *testing.T) {
	names := EngineNames()
	engines := Engines()
	if len(names) != len(engines) {
		t.Fatalf("EngineNames has %d entries, Engines has %d", len(names), len(engines))
	}
	for i, e := range engines {
		if names[i] != e.String() {
			t.Errorf("EngineNames[%d] = %q, want %q", i, names[i], e.String())
		}
		if got, err := ParseEngine(names[i]); err != nil || got != e {
			t.Errorf("ParseEngine(EngineNames[%d]) = %v, %v; want %v", i, got, err, e)
		}
		if int(e) != i {
			t.Errorf("Engines()[%d] = %d; the slice must be in declaration order", i, int(e))
		}
	}
	// The boundary engine just past the last valid one must be invalid:
	// Valid() and Engines() have to agree on where the zoo ends.
	if Engine(len(engines)).Valid() {
		t.Fatalf("Engine(%d) is past the end of Engines() but reports valid", len(engines))
	}
	if !Engine(len(engines) - 1).Valid() {
		t.Fatalf("last engine in Engines() reports invalid")
	}
}

func TestInvalidEngineRejected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	if _, err := ConnectedComponentsWith(g, Options{Engine: Engine(9)}); err == nil {
		t.Fatal("out-of-range engine must be an error, not a silent GCA run")
	}
	if _, err := ConnectedComponentsWith(g, Options{Engine: Engine(-3)}); err == nil {
		t.Fatal("negative engine must be an error")
	}
}

func TestContextCancelAbortsEngines(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.Gnp(32, 0.1, rand.New(rand.NewSource(5)))
	for _, e := range Engines() {
		if _, err := ConnectedComponentsWithContext(ctx, g, Options{Engine: e}); !errors.Is(err, context.Canceled) {
			t.Errorf("engine %s with cancelled ctx: err = %v, want context.Canceled", e, err)
		}
	}
}

func TestMinimumSpanningForestFacade(t *testing.T) {
	g := NewWeightedGraph(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 9)
	g.AddEdge(2, 3, 1)
	f, err := MinimumSpanningForest(g)
	if err != nil {
		t.Fatal(err)
	}
	if f.Weight != 8 || len(f.Edges) != 3 {
		t.Fatalf("MSF = %+v, want weight 8 with 3 edges", f)
	}
}
