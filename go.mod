module gcacc

go 1.22
