// Package gcacc is a from-scratch Go reproduction of "Implementing
// Hirschberg's PRAM-Algorithm for Connected Components on a Global
// Cellular Automaton" (Jendrsczok, Hoffmann, Keller; IPDPS 2007).
//
// It provides:
//
//   - a Global Cellular Automaton (GCA) machine model with parallel
//     stepping and congestion instrumentation (internal/gca);
//   - the paper's 12-generation connected-components program
//     (internal/core);
//   - a CREW/CROW/EREW PRAM simulator running the reference algorithm of
//     the paper's Listing 1 (internal/pram);
//   - graph workloads and sequential baselines (internal/graph);
//   - the paper's congestion account (Table 1), timing models and the
//     Section-4 replication scheme (internal/congestion);
//   - an FPGA cost model reproducing the Section-4 synthesis result
//     (internal/hw);
//   - access-pattern tracing and rendering (Figure 3) (internal/trace).
//
// This root package is the convenience facade: one call computes the
// connected components of an undirected graph on the simulated GCA, with
// optional instrumentation. Binaries under cmd/ regenerate every table and
// figure of the paper; see DESIGN.md and EXPERIMENTS.md.
package gcacc

import (
	"context"
	"fmt"
	"io"

	"gcacc/internal/core"
	"gcacc/internal/fault"
	"gcacc/internal/graph"
	"gcacc/internal/hw"
	"gcacc/internal/msf"
	"gcacc/internal/ncell"
	"gcacc/internal/pram"
	"gcacc/internal/sparse"
	"gcacc/internal/tc"
)

// Graph is an undirected graph over vertices 0…n-1 backed by a dense
// adjacency bit-matrix (the paper's input representation).
type Graph = graph.Graph

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// SparseGraph is an undirected graph backed by an edge list with a lazy
// CSR view — Θ(n + m) memory, the representation the sparse engines
// (EngineLiuTarjan, EngineLogDiameter) and million-vertex workloads use.
type SparseGraph = sparse.Graph

// NewSparseGraph returns an empty sparse graph with n vertices.
func NewSparseGraph(n int) *SparseGraph { return sparse.New(n) }

// ParseEdgeStream reads the "edges" text format ("n m" header, "u v"
// lines) into a sparse graph in one streaming pass; unlike the dense
// parsers it accepts vertex counts far beyond DenseCutoff.
func ParseEdgeStream(r io.Reader) (*SparseGraph, error) { return sparse.ReadEdgeStream(r) }

// DenseCutoff is the largest vertex count for which the dense n²-bit
// representation (and the dense-only engines) is offered; see
// Engine.Sparse and the serving layer's admission check.
const DenseCutoff = sparse.DenseCutoff

// Engine selects which implementation computes the components.
type Engine int

const (
	// EngineGCA runs the paper's 12-generation Global Cellular Automaton
	// program — the default.
	EngineGCA Engine = iota
	// EnginePRAM runs the reference algorithm (Listing 1) on the CROW
	// PRAM simulator.
	EnginePRAM
	// EngineSequential runs the union-find baseline.
	EngineSequential
	// EngineNCell runs the n-cell GCA design alternative (one cell per
	// node, Θ(n log n) generations) that the paper's Section 3 weighs
	// against the n²-cell design.
	EngineNCell
	// EngineHardware runs the register-transfer-level cell-array model of
	// the Section-4 hardware (static per-generation wiring plus n
	// extended cells).
	EngineHardware
	// EngineLiuTarjan runs the Liu–Tarjan concurrent label-propagation
	// algorithm (extended-connect with alteration) over the sparse
	// edge-list representation — Θ(n + m) memory, so it scales to
	// million-vertex graphs no dense engine can touch.
	EngineLiuTarjan
	// EngineLogDiameter runs the deterministic adaptation of the
	// Liu–Tarjan–Zhong log-diameter connectivity algorithm, also over the
	// sparse representation.
	EngineLogDiameter
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineGCA:
		return "gca"
	case EnginePRAM:
		return "pram"
	case EngineSequential:
		return "sequential"
	case EngineNCell:
		return "ncell"
	case EngineHardware:
		return "hardware"
	case EngineLiuTarjan:
		return "liutarjan"
	case EngineLogDiameter:
		return "logdiameter"
	default:
		return "unknown"
	}
}

// Valid reports whether e names an implemented engine.
func (e Engine) Valid() bool { return e >= EngineGCA && e <= EngineLogDiameter }

// Sparse reports whether e can run on the sparse edge-list
// representation — and therefore on graphs above DenseCutoff. The dense
// engines simulate the paper's (n+1)×n cell field or the n²-bit
// adjacency matrix and are refused above the cutoff by the serving
// layer; EngineSequential streams edges and handles both regimes.
func (e Engine) Sparse() bool {
	return e == EngineSequential || e == EngineLiuTarjan || e == EngineLogDiameter
}

// Engines returns all implemented engines in declaration order.
func Engines() []Engine {
	return []Engine{EngineGCA, EnginePRAM, EngineSequential, EngineNCell, EngineHardware,
		EngineLiuTarjan, EngineLogDiameter}
}

// EngineNames returns the parseable engine names in declaration order.
func EngineNames() []string {
	es := Engines()
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.String()
	}
	return names
}

// ParseEngine maps an engine name ("gca", "pram", "sequential", "ncell",
// "hardware", "liutarjan", "logdiameter") to its Engine value. It is the
// one engine-name parser shared by cmd/gca-cc, cmd/gca-serve and
// cmd/gca-loadgen.
func ParseEngine(name string) (Engine, error) {
	for _, e := range Engines() {
		if name == e.String() {
			return e, nil
		}
	}
	return 0, fmt.Errorf("gcacc: unknown engine %q (valid: %v)", name, EngineNames())
}

// Options configures ConnectedComponentsWith.
//
// Not every knob applies to every engine:
//
//   - Workers (simulator goroutines; < 1 selects GOMAXPROCS) is honoured
//     by EngineGCA, EnginePRAM, EngineNCell and EngineHardware. It never
//     changes results — every engine is bit-identical for every worker
//     count. EngineSequential is a single-threaded baseline and ignores
//     it.
//   - CollectStats (per-generation activity and congestion records) is
//     meaningful only for EngineGCA; the other engines return no Records.
type Options struct {
	// Engine selects the implementation (default EngineGCA). Values
	// outside the declared engines are rejected with an error.
	Engine Engine
	// Workers is the number of simulator goroutines; < 1 selects
	// GOMAXPROCS. See the applicability table above.
	Workers int
	// CollectStats gathers per-generation activity and congestion
	// records (GCA engine only).
	CollectStats bool
	// Fault, if non-nil and enabled, threads a deterministic
	// fault-injection schedule (internal/fault) into the stepping engines:
	// EngineGCA and EngineNCell honour it through gca.StepHooks, and the
	// sparse round engines (EngineLiuTarjan, EngineLogDiameter) accept
	// the same hooks at their round and worker boundaries. EnginePRAM and
	// EngineHardware have no hook points and ignore it; EngineSequential
	// is the fallback of last resort and is never injected, which is what
	// makes degrading to it safe.
	Fault *fault.Injector
}

// Report is the detailed result of a run.
type Report struct {
	// Labels maps each vertex to the smallest vertex index in its
	// component (the paper's super-node convention).
	Labels []int
	// Components is the number of connected components.
	Components int
	// Generations is the number of synchronous GCA steps executed
	// (GCA engine only).
	Generations int
	// PRAMSteps is the number of synchronous PRAM steps (PRAM engine
	// only).
	PRAMSteps int
	// Records holds per-generation instrumentation when CollectStats was
	// set (GCA engine only).
	Records []core.GenRecord
}

// ConnectedComponents labels the connected components of g on the
// simulated GCA and returns the super-node label of every vertex.
func ConnectedComponents(g *Graph) ([]int, error) {
	res, err := core.ConnectedComponents(g)
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}

// ConnectedComponentsWith computes components with explicit options and a
// detailed report. Options.Engine values outside the declared engines are
// an error — there is no silent fallback to the default engine.
func ConnectedComponentsWith(g *Graph, opt Options) (*Report, error) {
	return ConnectedComponentsWithContext(context.Background(), g, opt)
}

// ConnectedComponentsWithContext is ConnectedComponentsWith with a
// deadline: the context is checked between the synchronous steps of the
// simulated machines, so a cancelled or expired ctx aborts a run
// mid-computation with the context's error. This is the entry point of
// the serving layer (internal/service), which threads per-request
// deadlines down to the engines.
func ConnectedComponentsWithContext(ctx context.Context, g *Graph, opt Options) (*Report, error) {
	switch opt.Engine {
	case EngineGCA:
		res, err := core.Run(g, core.Options{
			Ctx:          ctx,
			Workers:      opt.Workers,
			CollectStats: opt.CollectStats,
			Hooks:        opt.Fault.GCAHooks(ctx),
		})
		if err != nil {
			return nil, err
		}
		return &Report{
			Labels:      res.Labels,
			Components:  res.ComponentCount(),
			Generations: res.Generations,
			Records:     res.Records,
		}, nil
	case EnginePRAM:
		res, err := pram.Hirschberg(g, pram.Options{
			Ctx:        ctx,
			SimWorkers: opt.Workers,
		})
		if err != nil {
			return nil, err
		}
		return &Report{
			Labels:     res.Labels,
			Components: graph.ComponentCount(res.Labels),
			PRAMSteps:  res.Costs.Steps,
		}, nil
	case EngineSequential:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		labels := graph.ConnectedComponentsUnionFind(g)
		return &Report{Labels: labels, Components: graph.ComponentCount(labels)}, nil
	case EngineNCell:
		res, err := ncell.Run(g, ncell.Options{
			Ctx:     ctx,
			Workers: opt.Workers,
			Hooks:   opt.Fault.GCAHooks(ctx),
		})
		if err != nil {
			return nil, err
		}
		return &Report{
			Labels:      res.Labels,
			Components:  graph.ComponentCount(res.Labels),
			Generations: res.Generations,
		}, nil
	case EngineHardware:
		ca := hw.NewCellArray(g)
		ca.Workers = opt.Workers
		labels, err := ca.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		return &Report{
			Labels:      labels,
			Components:  graph.ComponentCount(labels),
			Generations: ca.Cycles,
		}, nil
	case EngineLiuTarjan, EngineLogDiameter:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return ConnectedComponentsSparse(ctx, sparse.FromDense(g), opt)
	default:
		return nil, fmt.Errorf("gcacc: invalid engine %d (valid: %v)", int(opt.Engine), EngineNames())
	}
}

// ConnectedComponentsSparse computes components of a sparse edge-list
// graph. The sparse engines (see Engine.Sparse) run on it natively at
// any size up to sparse.MaxVertices; a dense-only engine is honoured by
// densifying when the graph is at most DenseCutoff vertices and refused
// with an error above it — the same boundary the serving layer enforces
// at admission. Report.Generations carries the sparse engines' round
// count (their analogue of the dense engines' generation count).
func ConnectedComponentsSparse(ctx context.Context, g *SparseGraph, opt Options) (*Report, error) {
	if !opt.Engine.Valid() {
		return nil, fmt.Errorf("gcacc: invalid engine %d (valid: %v)", int(opt.Engine), EngineNames())
	}
	switch opt.Engine {
	case EngineLiuTarjan, EngineLogDiameter:
		sopt := sparse.Options{
			Ctx:     ctx,
			Workers: opt.Workers,
			Hooks:   opt.Fault.GCAHooks(ctx),
			Variant: sparse.DefaultVariant,
		}
		var (
			res sparse.Result
			err error
		)
		if opt.Engine == EngineLiuTarjan {
			res, err = sparse.LiuTarjan(g, sopt)
		} else {
			res, err = sparse.LogDiameter(g, sopt)
		}
		if err != nil {
			return nil, err
		}
		return &Report{
			Labels:      res.Labels,
			Components:  sparse.ComponentCount(res.Labels),
			Generations: res.Rounds,
		}, nil
	case EngineSequential:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		labels := sparse.ConnectedComponentsUnionFind(g)
		return &Report{Labels: labels, Components: sparse.ComponentCount(labels)}, nil
	default:
		d, err := g.ToDense()
		if err != nil {
			return nil, fmt.Errorf("gcacc: engine %q needs the dense representation: %w", opt.Engine, err)
		}
		return ConnectedComponentsWithContext(ctx, d, opt)
	}
}

// TotalGenerations returns the paper's closed-form generation count for a
// graph of size n: 1 + log n · (3·log n + 8).
func TotalGenerations(n int) int { return core.TotalGenerations(n) }

// ValidateLabels reports whether labels is exactly the super-node
// labelling of g: endpoints of every edge share a label, every label class
// is internally connected, and every label is the minimum vertex index of
// its class. The checker is self-contained (its own flood fill, no engine
// code), so callers can use it as an independent oracle for any engine's
// output — the conformance harness (internal/verify, cmd/gca-verify) does.
func ValidateLabels(g *Graph, labels []int) bool {
	return graph.IsValidComponentLabelling(g, labels)
}

// Closure is a reflexive-transitive closure of an undirected graph —
// the companion problem of Hirschberg's original paper, computed here on
// the two-handed GCA (see internal/tc).
type Closure = tc.Closure

// TransitiveClosure computes the reflexive-transitive closure of g on the
// two-handed GCA by repeated boolean matrix squaring.
func TransitiveClosure(g *Graph) (*Closure, error) {
	res, err := tc.GCA(g, tc.GCAOptions{})
	if err != nil {
		return nil, err
	}
	return res.Closure, nil
}

// WeightedGraph is an undirected graph with positive integer edge
// weights.
type WeightedGraph = graph.Weighted

// NewWeightedGraph returns an edgeless weighted graph on n vertices.
func NewWeightedGraph(n int) *WeightedGraph { return graph.NewWeighted(n) }

// MSF is a minimum spanning forest (edge set and total weight).
type MSF = graph.MSF

// MinimumSpanningForest computes the minimum spanning forest of a
// weighted graph with Borůvka's algorithm mapped onto the GCA (see
// internal/msf) — one Borůvka round costs exactly the paper's
// 3·log n + 8 generations.
func MinimumSpanningForest(g *WeightedGraph) (*MSF, error) {
	res, err := msf.Run(g, msf.Options{})
	if err != nil {
		return nil, err
	}
	return res.MSF, nil
}
