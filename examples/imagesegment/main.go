// Image segmentation: connected-component labelling of a binary image —
// the classic picture-processing workload the GCA literature motivates
// (the CA/GCA models were designed for exactly this kind of cell field).
//
// A synthetic 16×16 bitmap with several blobs is converted into a graph
// (one vertex per foreground pixel, 4-neighbour adjacency), labelled on
// the simulated GCA, and rendered with one letter per segment.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gcacc"
)

const (
	width  = 16
	height = 16
)

func main() {
	img := synthesize(rand.New(rand.NewSource(7)))

	fmt.Println("input bitmap:")
	printBitmap(img)

	// Vertices: foreground pixels, densely renumbered.
	vertex := make(map[int]int)
	var pixels []int
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if img[y][x] {
				vertex[y*width+x] = len(pixels)
				pixels = append(pixels, y*width+x)
			}
		}
	}
	g := gcacc.NewGraph(len(pixels))
	for _, p := range pixels {
		x, y := p%width, p/width
		if x+1 < width && img[y][x+1] {
			g.AddEdge(vertex[p], vertex[p+1])
		}
		if y+1 < height && img[y+1][x] {
			g.AddEdge(vertex[p], vertex[p+width])
		}
	}

	rep, err := gcacc.ConnectedComponentsWith(g, gcacc.Options{CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsegments found: %d (GCA ran %d generations on a %d-cell field)\n",
		rep.Components, rep.Generations, g.N()*(g.N()+1))
	fmt.Println("\nsegmented image (one letter per segment):")

	// Stable letter per super-node label.
	letter := map[int]byte{}
	next := byte('A')
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if !img[y][x] {
				fmt.Print("·")
				continue
			}
			l := rep.Labels[vertex[y*width+x]]
			ch, ok := letter[l]
			if !ok {
				ch = next
				letter[l] = ch
				if next == 'Z' {
					next = 'a'
				} else {
					next++
				}
			}
			fmt.Print(string(ch))
		}
		fmt.Println()
	}

	// Segment size census.
	sizes := map[int]int{}
	for _, l := range rep.Labels {
		sizes[l]++
	}
	fmt.Println("\nsegment sizes:")
	for l, ch := range letter {
		fmt.Printf("  %c: %d pixels\n", ch, sizes[l])
	}
}

// synthesize draws a few random axis-aligned blobs on an empty bitmap.
func synthesize(rng *rand.Rand) [height][width]bool {
	var img [height][width]bool
	for b := 0; b < 6; b++ {
		cx, cy := rng.Intn(width), rng.Intn(height)
		w, h := 2+rng.Intn(4), 2+rng.Intn(4)
		for y := cy; y < cy+h && y < height; y++ {
			for x := cx; x < cx+w && x < width; x++ {
				img[y][x] = true
			}
		}
	}
	return img
}

func printBitmap(img [height][width]bool) {
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if img[y][x] {
				fmt.Print("#")
			} else {
				fmt.Print("·")
			}
		}
		fmt.Println()
	}
}
