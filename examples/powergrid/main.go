// Power grid: minimum-cost network design with the GCA. A set of
// substations must be wired at minimal total cable cost; candidate links
// have costs proportional to distance. The minimum spanning forest —
// computed by Borůvka's algorithm mapped onto the GCA with the paper's
// own recipe — is the optimal design; Kruskal cross-checks it.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"gcacc"
	"gcacc/internal/graph"
	"gcacc/internal/msf"
)

func main() {
	rng := rand.New(rand.NewSource(77))

	// Random substation coordinates on a 100×100 map; candidate links
	// between stations within range 45.
	const n = 20
	type point struct{ x, y float64 }
	stations := make([]point, n)
	for i := range stations {
		stations[i] = point{rng.Float64() * 100, rng.Float64() * 100}
	}
	g := gcacc.NewWeightedGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx := stations[u].x - stations[v].x
			dy := stations[u].y - stations[v].y
			dist := math.Hypot(dx, dy)
			if dist <= 45 {
				g.AddEdge(u, v, int64(dist*100)) // cost in cents/metre-ish
			}
		}
	}
	fmt.Printf("power grid design: %d substations, %d candidate links\n\n", n, g.M())

	res, err := msf.Run(g, msf.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimal grid: %d cables, total cost %d\n", len(res.MSF.Edges), res.MSF.Weight)
	fmt.Printf("computed in %d Borůvka rounds = %d GCA generations "+
		"(per-round cost 3·log n + 8 = %d, the paper's figure)\n\n",
		res.Rounds, res.Generations, msf.GenerationsPerRound(n))

	edges := append([]graph.WeightedEdge(nil), res.MSF.Edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].W < edges[j].W })
	fmt.Println("cables (cheapest first):")
	for _, e := range edges {
		fmt.Printf("  station %2d ↔ station %2d  cost %5d\n", e.U, e.V, e.W)
	}

	// Cross-check against the sequential baseline.
	want := graph.KruskalMSF(g)
	fmt.Printf("\nKruskal agrees: %v (weight %d)\n", res.MSF.Equal(want), want.Weight)

	// Islands (stations out of range of everyone) remain separate
	// components.
	islands := 0
	for i, l := range res.Labels {
		if l == i {
			islands++
		}
	}
	fmt.Printf("grid islands: %d\n", islands)
}
