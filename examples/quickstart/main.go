// Quickstart: build a small undirected graph, run the paper's GCA program
// through the public facade, and print the component labelling.
package main

import (
	"fmt"
	"log"

	"gcacc"
)

func main() {
	// The paper's running scenario: several disconnected components that
	// the algorithm merges in log n iterations.
	g := gcacc.NewGraph(8)
	g.AddEdge(0, 3)
	g.AddEdge(3, 5)
	g.AddEdge(1, 6)
	g.AddEdge(2, 7)
	g.AddEdge(7, 4)

	labels, err := gcacc.ConnectedComponents(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("vertex -> component (super node):")
	for v, l := range labels {
		fmt.Printf("  %d -> %d\n", v, l)
	}

	// Detailed run: the GCA executed exactly the paper's closed-form
	// number of synchronous generations.
	rep, err := gcacc.ConnectedComponentsWith(g, gcacc.Options{CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomponents: %d\n", rep.Components)
	fmt.Printf("GCA generations: %d (formula 1 + log n·(3·log n + 8) = %d)\n",
		rep.Generations, gcacc.TotalGenerations(g.N()))

	// Cross-check against the PRAM reference (Listing 1 of the paper).
	pram, err := gcacc.ConnectedComponentsWith(g, gcacc.Options{Engine: gcacc.EnginePRAM})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PRAM reference agrees: %v (in %d PRAM steps)\n",
		equal(rep.Labels, pram.Labels), pram.PRAMSteps)
}

func equal(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
