// Network components: find the connected components of a synthetic
// contact network (planted communities with sparse noise edges), compare
// all three engines, and show the congestion profile the GCA would face —
// the graph-algorithm workload the paper's introduction motivates.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"gcacc"
	"gcacc/internal/congestion"
	"gcacc/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 48 people in 6 planted communities with intra-community density
	// 0.4; the paper's dense regime (m = Θ(n²) within communities).
	const n, communities = 48, 6
	g := graph.PlantedComponents(n, communities, 0.4, rng)

	fmt.Printf("contact network: %d people, %d contacts, %d planted communities\n",
		g.N(), g.M(), communities)

	rep, err := gcacc.ConnectedComponentsWith(g, gcacc.Options{CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}

	// Group members by component.
	members := map[int][]int{}
	for v, l := range rep.Labels {
		members[l] = append(members[l], v)
	}
	var labels []int
	for l := range members {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	fmt.Printf("\ncomponents found on the GCA: %d\n", rep.Components)
	for _, l := range labels {
		fmt.Printf("  component %2d (%2d members): %v\n", l, len(members[l]), members[l])
	}

	// All three engines must agree.
	for _, e := range []gcacc.Engine{gcacc.EnginePRAM, gcacc.EngineSequential} {
		other, err := gcacc.ConnectedComponentsWith(g, gcacc.Options{Engine: e})
		if err != nil {
			log.Fatal(err)
		}
		agree := true
		for i := range rep.Labels {
			if rep.Labels[i] != other.Labels[i] {
				agree = false
				break
			}
		}
		fmt.Printf("engine %-10s agrees: %v\n", e, agree)
	}

	// The congestion the GCA would face, and what the Section-4 remedies
	// buy (the fully parallel hardware needs 1 cycle per generation).
	fmt.Printf("\nGCA generations: %d (formula %d)\n",
		rep.Generations, gcacc.TotalGenerations(n))
	cycles := congestion.CompareModels(rep.Records)
	fmt.Println("cycle cost under the Section-4 read-implementation models:")
	for _, m := range []congestion.Model{congestion.Unit, congestion.Replicated, congestion.Tree, congestion.Serial} {
		fmt.Printf("  %-12s %6d cycles\n", m, cycles[m])
	}
}
