// Percolation: a site-percolation study on a 2-D grid driven by the
// library's connected-components engines. For each occupation probability
// p, open sites form a graph (4-neighbour adjacency between open sites);
// the cluster structure comes from the component labelling. The study
// sweeps p across the percolation threshold (~0.593 for the square
// lattice) and reports cluster counts and the largest-cluster fraction,
// using the GCA engine at one illustrative p and the sequential baseline
// for the sweep (the GCA field needs n(n+1) cells for n open sites, so
// pick the engine to match the problem size — exactly the PRAM-vs-GCA
// cost discussion of the paper's Section 3).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gcacc"
	"gcacc/internal/graph"
)

const side = 24 // lattice side; up to 576 open sites

func main() {
	rng := rand.New(rand.NewSource(13))

	fmt.Println("site percolation on a", side, "×", side, "lattice")
	fmt.Printf("%-6s %-10s %-10s %-16s\n", "p", "open", "clusters", "largest fraction")
	for _, p := range []float64{0.3, 0.45, 0.55, 0.593, 0.65, 0.8} {
		open, g := sample(p, rng)
		labels := graph.ConnectedComponentsUnionFind(g)
		clusters := graph.ComponentCount(labels)
		largest := 0
		for _, s := range graph.ComponentSizes(labels) {
			if s > largest {
				largest = s
			}
		}
		frac := 0.0
		if len(open) > 0 {
			frac = float64(largest) / float64(len(open))
		}
		fmt.Printf("%-6.3f %-10d %-10d %-16.3f\n", p, len(open), clusters, frac)
	}

	// One configuration in detail, on the GCA engine, with a smaller
	// lattice so the n(n+1)-cell field stays modest.
	fmt.Println("\ndetailed run at p = 0.6 on an 12×12 lattice (GCA engine):")
	smallRng := rand.New(rand.NewSource(99))
	open, g := sampleSide(12, 0.6, smallRng)
	rep, err := gcacc.ConnectedComponentsWith(g, gcacc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open sites: %d, clusters: %d, GCA generations: %d\n",
		len(open), rep.Components, rep.Generations)

	// Render: '·' closed, letters per cluster (cycled).
	occupied := map[int]int{} // site -> vertex
	for v, s := range open {
		occupied[s] = v
	}
	for y := 0; y < 12; y++ {
		for x := 0; x < 12; x++ {
			v, ok := occupied[y*12+x]
			if !ok {
				fmt.Print("·")
				continue
			}
			fmt.Print(string(rune('A' + rep.Labels[v]%26)))
		}
		fmt.Println()
	}
}

func sample(p float64, rng *rand.Rand) ([]int, *graph.Graph) {
	return sampleSide(side, p, rng)
}

// sampleSide draws open sites with probability p on an s×s lattice and
// returns the open-site list plus the adjacency graph over open sites.
func sampleSide(s int, p float64, rng *rand.Rand) ([]int, *graph.Graph) {
	openMask := make([]bool, s*s)
	var open []int
	vertex := make([]int, s*s)
	for i := range openMask {
		if rng.Float64() < p {
			openMask[i] = true
			vertex[i] = len(open)
			open = append(open, i)
		}
	}
	g := graph.New(len(open))
	for _, site := range open {
		x, y := site%s, site/s
		if x+1 < s && openMask[site+1] {
			g.AddEdge(vertex[site], vertex[site+1])
		}
		if y+1 < s && openMask[site+s] {
			g.AddEdge(vertex[site], vertex[site+s])
		}
	}
	return open, g
}
