// Design space: the engineering study behind the paper's Section 3
// decision "between n and n² cells". For a sweep of graph sizes this
// example runs both GCA designs, the RTL-level hardware model and the
// PRAM reference, and prints the cost picture a hardware architect would
// look at: cells, synchronous generations, cell·generation work, modelled
// FPGA resources and runtime.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gcacc"
	"gcacc/internal/core"
	"gcacc/internal/hw"
	"gcacc/internal/ncell"
	"gcacc/internal/pram"
)

func main() {
	fmt.Println("design-space study: Hirschberg connected components, G(n, 0.5)")
	fmt.Println()
	fmt.Printf("%-5s | %-22s | %-22s | %-14s | %-22s\n",
		"n", "n²-cell GCA (paper)", "n-cell GCA", "PRAM steps", "modelled FPGA (n² design)")
	fmt.Printf("%-5s | %-10s %-11s | %-10s %-11s | %-14s | %-12s %-9s\n",
		"", "gens", "cell·gens", "gens", "cell·gens", "", "LEs", "runtime")

	for n := 4; n <= 128; n *= 2 {
		g := gcacc.NewGraph(n)
		rng := rand.New(rand.NewSource(2007))
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}

		sq, err := core.ConnectedComponents(g)
		if err != nil {
			log.Fatal(err)
		}
		lin, err := ncell.ConnectedComponents(g)
		if err != nil {
			log.Fatal(err)
		}
		pr, err := pram.Hirschberg(g, pram.Options{})
		if err != nil {
			log.Fatal(err)
		}
		for i := range sq.Labels {
			if sq.Labels[i] != lin.Labels[i] || sq.Labels[i] != pr.Labels[i] {
				log.Fatalf("models disagree at n=%d vertex %d", n, i)
			}
		}

		syn := hw.Estimate(n)
		sqCells := n * (n + 1)
		fmt.Printf("%-5d | %-10d %-11d | %-10d %-11d | %-14d | %-12d %6.2f µs\n",
			n, sq.Generations, sqCells*sq.Generations,
			lin.Generations, n*lin.Generations,
			pr.Costs.Steps, syn.LogicElements, hw.RuntimeMicros(n))
	}

	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("  - the n²-cell design pays Θ(n²) cells for Θ(log² n) generations —")
	fmt.Println("    the paper's choice, 'the highest degree of parallelism';")
	fmt.Println("  - the n-cell design pays Θ(n) cells for Θ(n log n) generations and")
	fmt.Println("    needs no congestion remedies (its scans have δ = 1 by construction);")
	fmt.Println("  - in total cell·generation work the n-cell design is cheaper, but the")
	fmt.Println("    paper's Section-3 point is that on an FPGA a cell costs little more")
	fmt.Println("    than its registers, so the n²-cell design's wall-clock win is free.")
}
