// Custom rule: author a brand-new GCA algorithm as text with the rule
// language (internal/gcasm) instead of writing Go — the "software
// support" side of the paper's research programme. The program below is
// classic pointer jumping: every cell holds a pointer into a forest, and
// log n generations of d ← d* make every cell point at its tree's root.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gcacc/internal/gca"
	"gcacc/internal/gcasm"
)

const rootFinding = `
# Pointer jumping: d is a parent pointer; after log n generations every
# cell points at its root. Roots point at themselves.
gen jump times log:
    p = d
    d <- dstar

repeat 1 {
    jump
}
`

func main() {
	prog, err := gcasm.Parse(rootFinding)
	if err != nil {
		log.Fatal(err)
	}

	// Build a random forest of parent pointers over n cells.
	const n = 24
	rng := rand.New(rand.NewSource(5))
	parent := make([]int, n)
	for i := range parent {
		if i == 0 || rng.Intn(4) == 0 {
			parent[i] = i // a root
		} else {
			parent[i] = rng.Intn(i) // attach to an earlier cell
		}
	}

	field := gca.NewField(n)
	for i, p := range parent {
		field.SetData(i, gca.Value(p))
	}

	res, err := prog.Run(gcasm.RunConfig{N: n, Field: field})
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth by chasing pointers sequentially.
	root := func(v int) int {
		for parent[v] != v {
			v = parent[v]
		}
		return v
	}

	fmt.Printf("pointer jumping over %d cells took %d generations (⌈log₂ n⌉ = %d)\n\n",
		n, res.Generations, log2(n))
	fmt.Println("cell  parent  root(GCA)  root(check)")
	ok := true
	for i := 0; i < n; i++ {
		got := int(field.Data(i))
		want := root(i)
		mark := ""
		if got != want {
			mark = "  MISMATCH"
			ok = false
		}
		fmt.Printf("%4d  %6d  %9d  %11d%s\n", i, parent[i], got, want, mark)
	}
	if !ok {
		log.Fatal("pointer jumping produced wrong roots")
	}
	fmt.Println("\nall roots verified.")
}

func log2(n int) int {
	k, p := 0, 1
	for p < n {
		p <<= 1
		k++
	}
	return k
}
