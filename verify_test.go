package gcacc_test

import (
	"os"
	"strconv"
	"testing"

	"gcacc"
	"gcacc/internal/graph"
	"gcacc/internal/verify"
)

// The conformance entry points: `go test -run Conformance` runs every
// engine (and the serving-layer path) over the shared corpus with the
// differential, metamorphic and analytic-oracle checks of internal/verify.
// TESTING.md documents the harness; cmd/gca-verify is the CLI counterpart.

// TestConformanceCorpus is the main gate: all five engines plus the
// service path over every corpus family at a small size budget.
func TestConformanceCorpus(t *testing.T) {
	rep, err := verify.Run(verify.Options{
		N: 16, Seed: 1, Service: true, Metamorphic: true, Oracles: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Families) < 6 {
		t.Fatalf("corpus covers %d families, the conformance contract needs ≥ 6", len(rep.Families))
	}
	wantEngines := len(gcacc.Engines())
	direct := 0
	for _, e := range rep.Engines {
		if e.Path == "direct" {
			direct++
		}
		if e.Cases != rep.Cases {
			t.Errorf("engine %s/%s ran %d of %d cases", e.Engine, e.Path, e.Cases, rep.Cases)
		}
	}
	if direct != wantEngines {
		t.Fatalf("harness exercised %d engines, want %d", direct, wantEngines)
	}
	if !rep.OK() {
		t.Fatalf("conformance failures:\n%s", rep.Format())
	}
}

// TestConformanceServiceFaulty rides the chaos invariant on tier 1: a
// small corpus through the fault-injected serving path (retry, breaker,
// sequential fallback) at a fixed seed. Requests may error under the
// injected faults — errors are tolerated and counted — but every result
// that comes back must equal the union-find ground truth. The full
// seeded soak lives in internal/verify (TestChaosSoak, `make
// chaos-smoke`); this sub-run keeps the invariant continuously checked
// by plain `go test ./...`.
func TestConformanceServiceFaulty(t *testing.T) {
	rep, err := verify.Run(verify.Options{
		N: 8, Seed: 5, Service: false, Metamorphic: false, Oracles: false,
		FaultSpec: "seed=7,steperr=0.02,stepdelay=0.05:100us,stall=0.05:100us",
	})
	if err != nil {
		t.Fatal(err)
	}
	faulty := 0
	for _, e := range rep.Engines {
		if e.Path == "service-faulty" {
			faulty++
			if e.Cases != rep.Cases {
				t.Errorf("engine %s/%s ran %d of %d cases", e.Engine, e.Path, e.Cases, rep.Cases)
			}
		}
	}
	if faulty != len(gcacc.Engines()) {
		t.Fatalf("faulty path exercised %d engines, want %d", faulty, len(gcacc.Engines()))
	}
	if !rep.OK() {
		t.Fatalf("chaos invariant violated — a fault surfaced as a wrong answer:\n%s", rep.Format())
	}
}

// TestConformanceSparse is the million-vertex tier's standing gate: both
// sparse engines (and the sequential baseline) differentially verified
// against union-find — itself cross-checked by an independent BFS
// oracle — over the sparse corpus at n = 10⁵, with every Liu–Tarjan
// variant conformed individually at a smaller size. GCACC_SPARSE_N
// overrides the scale (the 10⁶ runs of EXPERIMENTS.md use it); -short
// drops to 10⁴.
func TestConformanceSparse(t *testing.T) {
	n := 100_000
	if testing.Short() {
		n = 10_000
	}
	if env := os.Getenv("GCACC_SPARSE_N"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("GCACC_SPARSE_N=%q: %v", env, err)
		}
		n = v
	}
	rep, err := verify.RunSparse(verify.SparseOptions{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Families) < 6 {
		t.Fatalf("sparse corpus covers %d families, want ≥ 6", len(rep.Families))
	}
	if !rep.OK() {
		t.Fatalf("sparse conformance failures at n=%d:\n%s", n, rep.Format())
	}

	small, err := verify.RunSparse(verify.SparseOptions{N: 2000, Seed: 3, AllVariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if !small.OK() {
		t.Fatalf("variant conformance failures:\n%s", small.Format())
	}
}

// TestConformanceStream is the streaming tier's standing gate: seeded
// mutation traces over every sparse corpus family replayed against the
// incremental union-find fast path, a periodic-full-recompute replica,
// and (at dense scale) a replica whose recompute engine is the GCA
// itself — every query checked against a from-scratch union-find oracle,
// every batch against the epoch counter, and all replicas required to
// agree label for label. A second, smaller run repeats the replay under
// injected mid-batch aborts and failing recompute steps: faults may
// surface as counted transient errors, never as divergence.
// GCACC_STREAM_N overrides the scale; -short drops to 10³.
func TestConformanceStream(t *testing.T) {
	n := 10_000
	if testing.Short() {
		n = 1_000
	}
	if env := os.Getenv("GCACC_STREAM_N"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("GCACC_STREAM_N=%q: %v", env, err)
		}
		n = v
	}
	rep, err := verify.RunStream(verify.StreamOptions{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Families) < 8 {
		t.Fatalf("stream corpus covers %d families, want ≥ 8", len(rep.Families))
	}
	if !rep.OK() {
		t.Fatalf("stream conformance failures at n=%d:\n%s", n, rep.Format())
	}

	faulty, err := verify.RunStream(verify.StreamOptions{
		N: 64, Seed: 2,
		FaultSpec: "seed=9,batcherr=0.15,steperr=0.03,stall=0.05:100us",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !faulty.OK() {
		t.Fatalf("stream divergence under fault injection:\n%s", faulty.Format())
	}
	errs := 0
	for _, e := range faulty.Engines {
		errs += e.Errors
	}
	if errs == 0 {
		t.Fatal("fault-injected stream run surfaced no faults — it proved nothing")
	}
}

// TestConformanceCluster is the sharded tier's standing gate: the
// corpus replayed through in-process cluster topologies of 1, 2 and 4
// replicas, every request submitted through EVERY replica — most entry
// points are deliberately the wrong shard for the key, so consistent-
// hash routing, proxying and cache federation sit on the critical path
// of nearly every check. Labels must be bit-identical to the direct
// single-process run and to union-find ground truth regardless of entry
// point, reported owners must match the ring's deterministic placement,
// the corpus-as-one-batch path must agree item for item, and multi-
// replica topologies must show real peer traffic. GCACC_CLUSTER_N
// overrides the corpus budget; -short drops the 4-replica topology.
func TestConformanceCluster(t *testing.T) {
	n := 16
	if env := os.Getenv("GCACC_CLUSTER_N"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("GCACC_CLUSTER_N=%q: %v", env, err)
		}
		n = v
	}
	replicas := []int{1, 2, 4}
	if testing.Short() {
		replicas = []int{1, 2}
	}
	rep, err := verify.RunCluster(verify.ClusterOptions{N: n, Seed: 1, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	wantPaths := len(gcacc.Engines()) * len(replicas)
	if len(rep.Engines) != wantPaths {
		t.Fatalf("harness exercised %d engine/topology pairs, want %d", len(rep.Engines), wantPaths)
	}
	for _, e := range rep.Engines {
		if e.Cases != rep.Cases {
			t.Errorf("engine %s/%s ran %d of %d cases", e.Engine, e.Path, e.Cases, rep.Cases)
		}
	}
	if !rep.OK() {
		t.Fatalf("cluster conformance failures:\n%s", rep.Format())
	}
}

// TestConformancePowerOfTwo pins the paper's closed form at a power-of-two
// size, where 1 + log n · (3·log n + 8) is exact: n = 32 gives log n = 5
// and 116 generations.
func TestConformancePowerOfTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if want := 1 + 5*(3*5+8); gcacc.TotalGenerations(32) != want {
		t.Fatalf("TotalGenerations(32) = %d, want %d", gcacc.TotalGenerations(32), want)
	}
	rep, err := verify.Run(verify.Options{
		N: 32, Seed: 2, Service: false, Metamorphic: false, Oracles: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("conformance failures at n=32:\n%s", rep.Format())
	}
}

// TestConformanceSeeds runs the differential and metamorphic checks under
// a couple of extra corpus seeds so the random families (gnp, planted,
// forest) vary.
func TestConformanceSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, seed := range []int64{3, 4} {
		rep, err := verify.Run(verify.Options{
			N: 12, Seed: seed, Service: false, Metamorphic: true, Oracles: false,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d failures:\n%s", seed, rep.Format())
		}
	}
}

// graphFromFuzzBytes decodes a fuzzer-controlled byte string into a graph:
// the first byte picks n ∈ 1…32, subsequent byte pairs are edges modulo n.
// Every byte string decodes to some valid graph, so the fuzzer explores
// graph space rather than parser error paths.
func graphFromFuzzBytes(data []byte) *graph.Graph {
	if len(data) == 0 {
		return graph.New(1)
	}
	n := 1 + int(data[0])%32
	g := graph.New(n)
	for i := 1; i+1 < len(data); i += 2 {
		u, v := int(data[i])%n, int(data[i+1])%n
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// FuzzConformanceEdgeList feeds fuzzer-mutated edge lists through the full
// differential check: every engine must agree with union-find, and the GCA
// engine must hit the closed-form generation count, for every input the
// fuzzer can construct.
func FuzzConformanceEdgeList(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})                          // n=1
	f.Add([]byte{7, 0, 1, 1, 2, 4, 5})        // small path + pair
	f.Add([]byte{15, 0, 1, 0, 2, 0, 3, 0, 4}) // star
	f.Add([]byte{31, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromFuzzBytes(data)
		if err := verify.CheckGraph(g, gcacc.Engines()); err != nil {
			t.Fatal(err)
		}
	})
}
