package main

// The trajectory appender: -json FILE appends the run's numbers to the
// same {"points": [...]} file gca-benchjson writes, so loadgen
// measurements (closed-loop p50/p99, per-shard splits) line up beside
// the `go test -bench` points instead of living in scrollback. The
// structs mirror gca-benchjson's wire format — the two commands stay
// independently buildable.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"time"
)

// benchPoint is one measurement in a trajectory point, gca-benchjson's
// Benchmark shape.
type benchPoint struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type trajectoryPoint struct {
	Label      string       `json:"label"`
	Date       string       `json:"date"`
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Benchmarks []benchPoint `json:"benchmarks"`
}

type trajectory struct {
	Points []trajectoryPoint `json:"points"`
}

// appendTrajectory adds one labelled point to the file, creating it if
// absent. A point with the same label already present on the same date
// is extended rather than duplicated, so a single bench session's
// single/batch/per-shard runs collect under one point.
func appendTrajectory(path, label string, benchmarks []benchPoint) error {
	traj := &trajectory{}
	buf, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
	case err != nil:
		return err
	default:
		if err := json.Unmarshal(buf, traj); err != nil {
			return fmt.Errorf("%s: not a trajectory file: %w", path, err)
		}
	}

	date := time.Now().Format("2006-01-02")
	merged := false
	for i := range traj.Points {
		if traj.Points[i].Label == label && traj.Points[i].Date == date {
			traj.Points[i].Benchmarks = append(traj.Points[i].Benchmarks, benchmarks...)
			merged = true
			break
		}
	}
	if !merged {
		traj.Points = append(traj.Points, trajectoryPoint{
			Label:      label,
			Date:       date,
			Goos:       runtime.GOOS,
			Goarch:     runtime.GOARCH,
			Benchmarks: benchmarks,
		})
	}

	out, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gca-loadgen: %s: %d points (+%d benchmarks under %q)\n",
		path, len(traj.Points), len(benchmarks), label)
	return nil
}
