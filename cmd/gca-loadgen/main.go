// Command gca-loadgen is a closed-loop load generator for gca-serve: c
// workers each keep exactly one request in flight against POST
// /v1/components and the tool reports sustained throughput and latency
// percentiles — the macro-benchmark future serving-layer PRs move.
//
//	gca-serve -addr :8080 &
//	gca-loadgen -addr http://localhost:8080 -c 8 -d 10s -vertices 64 -distinct 4
//
// With -distinct k the workers cycle through k different random graphs,
// so a cache of ≥ k entries converges to a pure hit workload; -nocache
// forces an engine run per request instead.
//
// With -fault the given schedule (internal/fault spec grammar) is
// forwarded per request via the `fault` query parameter, which the server
// only accepts when started with -chaos. The report always splits latency
// percentiles into clean vs degraded responses and adds the server's
// resilience counters — the degraded-mode p50/p99 the chaos tier
// documents. Against a sharded deployment the X-GCA-Shard-Owner header
// additionally keys a per-shard p50/p99 breakdown.
//
// With -replicas R the tool instead builds an in-process cluster of R
// replicas (the same topology the conformance tier verifies) and drives
// it directly — no server process needed. -topology picks the routing
// mode (proxy|federate), -batch N pushes items through the one-ticket
// batch path N at a time, and the report adds per-shard latency plus
// the peer-traffic, federation and cache-hit-ratio counters:
//
//	gca-loadgen -replicas 3 -n 3000 -nocache            # single-request baseline
//	gca-loadgen -replicas 3 -n 3000 -nocache -batch 32  # batch path, p50 is per item
//
// -json FILE appends the measured p50/p99/throughput (and the per-shard
// split) as a labelled trajectory point in gca-benchjson's format, so
// serving-layer numbers accumulate beside the micro-benchmarks:
//
//	gca-loadgen -replicas 3 -n 3000 -json BENCH_20260808.json -label cluster-loadgen
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gcacc"
	"gcacc/internal/cluster"
	"gcacc/internal/graph"
	"gcacc/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "gca-serve base URL")
		engine      = flag.String("engine", "gca", "engine: "+strings.Join(gcacc.EngineNames(), "|"))
		concurrency = flag.Int("c", 8, "closed-loop workers (requests in flight)")
		total       = flag.Int("n", 0, "total requests (0 = run for -d)")
		duration    = flag.Duration("d", 10*time.Second, "run duration when -n is 0")
		vertices    = flag.Int("vertices", 64, "vertices per generated graph")
		prob        = flag.Float64("p", 0.06, "edge probability of the generated graphs")
		distinct    = flag.Int("distinct", 4, "number of distinct graphs cycled through")
		format      = flag.String("format", "edges", "wire format: edges|matrix")
		seed        = flag.Int64("seed", 1, "graph generator seed")
		nocache     = flag.Bool("nocache", false, "ask the server to bypass its result cache")
		faultSpec   = flag.String("fault", "", "per-request fault schedule forwarded to the server (needs gca-serve -chaos), e.g. seed=7,steperr=0.01")

		replicas = flag.Int("replicas", 0, "drive an in-process cluster of this many replicas instead of -addr (0 = HTTP mode)")
		topology = flag.String("topology", "proxy", "in-process cluster routing mode: proxy|federate")
		batch    = flag.Int("batch", 0, "submit items in batches of this size through the batch path (0 = single requests; in-process mode only)")
		jsonOut  = flag.String("json", "", "append the run's numbers to this trajectory file (gca-benchjson format)")
		label    = flag.String("label", "loadgen", "trajectory point label for -json")
	)
	flag.Parse()

	eng, err := gcacc.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	if *concurrency < 1 || *distinct < 1 || *vertices < 1 {
		fatal(fmt.Errorf("need -c, -distinct and -vertices >= 1"))
	}

	if *replicas > 0 {
		points, err := runTopology(topoOptions{
			replicas:    *replicas,
			mode:        *topology,
			batch:       *batch,
			engine:      eng,
			concurrency: *concurrency,
			total:       *total,
			duration:    *duration,
			vertices:    *vertices,
			prob:        *prob,
			distinct:    *distinct,
			seed:        *seed,
			nocache:     *nocache,
			faultSpec:   *faultSpec,
		})
		if err != nil {
			fatal(err)
		}
		if *jsonOut != "" && len(points) > 0 {
			if err := appendTrajectory(*jsonOut, *label, points); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *batch > 0 {
		fatal(fmt.Errorf("-batch needs the in-process mode (-replicas)"))
	}

	// Pre-serialize the request bodies; generation cost must not pollute
	// the latency measurement.
	rng := rand.New(rand.NewSource(*seed))
	bodies := make([][]byte, *distinct)
	for i := range bodies {
		g := graph.Gnp(*vertices, *prob, rng)
		var buf bytes.Buffer
		var err error
		switch *format {
		case "edges":
			err = graph.WriteEdgeList(&buf, g)
		case "matrix":
			err = graph.WriteMatrix(&buf, g)
		default:
			err = fmt.Errorf("unknown format %q (edges|matrix)", *format)
		}
		if err != nil {
			fatal(err)
		}
		bodies[i] = buf.Bytes()
	}

	target := strings.TrimSuffix(*addr, "/") + "/v1/components?labels=0&format=" + *format + "&engine=" + *engine
	if *nocache {
		target += "&nocache=1"
	}
	if *faultSpec != "" {
		target += "&fault=" + url.QueryEscape(*faultSpec)
	}
	client := &http.Client{Timeout: 60 * time.Second}

	// Probe liveness before unleashing the loop.
	if resp, err := client.Get(strings.TrimSuffix(*addr, "/") + "/healthz"); err != nil {
		fatal(fmt.Errorf("server not reachable: %w", err))
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}

	type workerStats struct {
		latencies []time.Duration         // clean 200s
		degLat    []time.Duration         // degraded 200s (fallback/demoted runs)
		byShard   map[int][]time.Duration // keyed by X-GCA-Shard-Owner when present
		ok        int
		degraded  int
		retries   int
		rejected  int // 429
		failed    int // transport errors and other non-200s
	}
	var (
		issued   atomic.Int64
		deadline = time.Now().Add(*duration)
		stats    = make([]workerStats, *concurrency)
		wg       sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			st.byShard = map[int][]time.Duration{}
			for {
				i := issued.Add(1) - 1
				if *total > 0 {
					if int(i) >= *total {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				body := bodies[int(i)%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(target, "text/plain", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					st.failed++
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					st.ok++
					// The body tells clean from degraded (the report always
					// splits the two); labels=0 keeps it a few dozen bytes.
					var r struct {
						Degraded bool `json:"degraded"`
						Retries  int  `json:"retries"`
					}
					if json.NewDecoder(resp.Body).Decode(&r) == nil && r.Degraded {
						st.degraded++
						st.degLat = append(st.degLat, lat)
					} else {
						st.latencies = append(st.latencies, lat)
					}
					st.retries += r.Retries
					// A sharded deployment names the owner on every response.
					if shard := resp.Header.Get(cluster.OwnerHeader); shard != "" {
						if s, err := strconv.Atoi(shard); err == nil {
							st.byShard[s] = append(st.byShard[s], lat)
						}
					}
				case http.StatusTooManyRequests:
					st.rejected++
				default:
					st.failed++
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var clean, deg []time.Duration
	byShard := map[int][]time.Duration{}
	ok, degraded, retries, rejected, failed := 0, 0, 0, 0, 0
	for i := range stats {
		clean = append(clean, stats[i].latencies...)
		deg = append(deg, stats[i].degLat...)
		for s, lats := range stats[i].byShard {
			byShard[s] = append(byShard[s], lats...)
		}
		ok += stats[i].ok
		degraded += stats[i].degraded
		retries += stats[i].retries
		rejected += stats[i].rejected
		failed += stats[i].failed
	}
	fmt.Printf("# loadgen engine=%s vertices=%d p=%.3f distinct=%d c=%d nocache=%v fault=%q\n",
		*engine, *vertices, *prob, *distinct, *concurrency, *nocache, *faultSpec)
	fmt.Printf("requests=%d ok=%d rejected429=%d failed=%d elapsed=%.2fs throughput=%.1f req/s\n",
		ok+rejected+failed, ok, rejected, failed, elapsed.Seconds(),
		float64(ok)/elapsed.Seconds())
	if degraded > 0 || retries > 0 || *faultSpec != "" {
		fmt.Printf("chaos: degraded=%d clean=%d retries=%d\n", degraded, ok-degraded, retries)
	}
	printLatency("latency(clean)", clean)
	printLatency("latency(degraded)", deg)
	for _, s := range sortedShards(byShard) {
		lats := byShard[s]
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Printf("shard %d: n=%d p50=%s p99=%s\n",
			s, len(lats), quantile(lats, 0.50), quantile(lats, 0.99))
	}
	if *jsonOut != "" && len(clean) > 0 {
		sort.Slice(clean, func(i, j int) bool { return clean[i] < clean[j] })
		if err := appendTrajectory(*jsonOut, *label, []benchPoint{{
			Name:       fmt.Sprintf("Loadgen/http/%s/c=%d", *engine, *concurrency),
			Pkg:        "gcacc/cmd/gca-loadgen",
			Iterations: int64(len(clean)),
			NsPerOp:    float64(quantile(clean, 0.50).Nanoseconds()),
			Metrics: map[string]float64{
				"p99_us": float64(quantile(clean, 0.99).Microseconds()),
				"req/s":  float64(ok) / elapsed.Seconds(),
			},
		}}); err != nil {
			fatal(err)
		}
	}

	// Server-side view: cache effectiveness, queue behaviour and — under
	// faults — the resilience counters.
	if resp, err := client.Get(strings.TrimSuffix(*addr, "/") + "/v1/stats"); err == nil {
		defer func() { _ = resp.Body.Close() }()
		var payload struct {
			service.Stats
			Cluster *cluster.Stats `json:"cluster"`
		}
		if json.NewDecoder(resp.Body).Decode(&payload) == nil {
			st := payload.Stats
			fmt.Printf("server: completed=%d cache_hits=%d cache_misses=%d coalesced=%d rejected429=%d generations=%d\n",
				st.Completed, st.CacheHits, st.CacheMisses, st.Coalesced, st.RejectedFull, st.Generations)
			fmt.Printf("server: queue_wait p50=%dµs p99=%dµs · run p50=%dµs p99=%dµs\n",
				st.QueueWait.P50US, st.QueueWait.P99US, st.RunTime.P50US, st.RunTime.P99US)
			if *faultSpec != "" || st.Retries > 0 || st.BreakerTrips > 0 || st.DegradedOverload > 0 {
				fmt.Printf("server: retries=%d breaker_trips=%d breaker_open=%d fallback=%d degraded_overload=%d panics=%d\n",
					st.Retries, st.BreakerTrips, st.BreakerOpen, st.FallbackBreaker, st.DegradedOverload, st.EnginePanics)
			}
			if st.Faults != nil {
				fmt.Printf("server: injected step_errors=%d step_delays=%d worker_stalls=%d over %d runs\n",
					st.Faults.StepErrors, st.Faults.StepDelays, st.Faults.WorkerStalls, st.Faults.Runs)
			}
			if cs := payload.Cluster; cs != nil && len(cs.Members) > 1 {
				fmt.Printf("server: cluster self=%d/%d routed=%d proxied=%d peer_calls=%d peer_errors=%d "+
					"peer_cache hits=%d misses=%d fallback_local=%d\n",
					cs.Self, len(cs.Members), cs.RoutedRemote, cs.Proxied, cs.PeerCalls, cs.PeerErrors,
					cs.PeerCacheHits, cs.PeerCacheMisses, cs.FallbackLocal)
			}
		}
	}
}

// sortedShards returns the shard keys in ascending order.
func sortedShards(byShard map[int][]time.Duration) []int {
	shards := make([]int, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	return shards
}

// printLatency prints one percentile line, or nothing for an empty set.
func printLatency(label string, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	fmt.Printf("%s: n=%d p50=%s p90=%s p99=%s mean=%s min=%s max=%s\n",
		label, len(lats),
		quantile(lats, 0.50), quantile(lats, 0.90), quantile(lats, 0.99),
		(sum / time.Duration(len(lats))).Round(time.Microsecond),
		lats[0], lats[len(lats)-1])
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx].Round(time.Microsecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gca-loadgen:", err)
	os.Exit(1)
}
