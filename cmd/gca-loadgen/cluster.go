package main

// The in-process multi-replica harness: -replicas R builds the same
// cluster.Topology the conformance tier verifies (R service instances
// joined by consistent-hash routing over in-process peers) and drives
// it closed-loop, so the sharded tier's latency can be measured without
// standing up R OS processes. -batch groups items through
// SubmitBatch — the one-ticket batch path — and reports per-item cost
// against the single-request baseline. The report always splits clean
// vs degraded latency and breaks p50/p99 down per shard owner, plus the
// peer-traffic and cache-federation counters the topology accumulated.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gcacc"
	"gcacc/internal/cluster"
	"gcacc/internal/fault"
	"gcacc/internal/graph"
	"gcacc/internal/service"
)

// topoOptions carries the multi-replica run's knobs out of main.
type topoOptions struct {
	replicas    int
	mode        string // proxy | federate
	batch       int    // items per SubmitBatch call (0 = single requests)
	engine      gcacc.Engine
	concurrency int
	total       int
	duration    time.Duration
	vertices    int
	prob        float64
	distinct    int
	seed        int64
	nocache     bool
	faultSpec   string
}

// topoWorkerStats is one closed-loop worker's tallies; workers never
// share, so the hot path stays lock-free.
type topoWorkerStats struct {
	clean, deg []time.Duration
	byShard    map[int][]time.Duration
	ok, failed int
	peerHits   int
	fallbacks  int
}

// observe files one item outcome: latency split clean/degraded and
// keyed by the shard owner that served it.
func (st *topoWorkerStats) observe(res *cluster.Result, err error, lat time.Duration) {
	if err != nil {
		st.failed++
		return
	}
	st.ok++
	if res.PeerCacheHit {
		st.peerHits++
	}
	if res.FallbackLocal {
		st.fallbacks++
	}
	if res.Degraded {
		st.deg = append(st.deg, lat)
	} else {
		st.clean = append(st.clean, lat)
	}
	st.byShard[res.Owner] = append(st.byShard[res.Owner], lat)
}

// runTopology drives the in-process topology and returns the bench
// points to append to a trajectory file (nil when none were measured).
func runTopology(o topoOptions) ([]benchPoint, error) {
	mode, err := cluster.ParseMode(o.mode)
	if err != nil {
		return nil, err
	}
	var inj *fault.Injector
	retries := 0
	if o.faultSpec != "" {
		cfg, err := fault.ParseSpec(o.faultSpec)
		if err != nil {
			return nil, err
		}
		inj = fault.New(cfg)
		retries = 3 // degrade under injected faults rather than fail the measurement
	}
	top, err := cluster.NewInProcessTopology(o.replicas, service.Config{
		Workers:            2,
		QueueDepth:         256,
		CacheEntries:       512,
		MaxVertices:        o.vertices + 8,
		Fault:              inj,
		Seed:               o.seed,
		RetryMax:           retries,
		FallbackSequential: o.faultSpec != "",
	}, cluster.Config{Mode: mode, Fault: inj})
	if err != nil {
		return nil, err
	}
	defer top.Close()

	rng := rand.New(rand.NewSource(o.seed))
	graphs := make([]*graph.Graph, o.distinct)
	for i := range graphs {
		graphs[i] = graph.Gnp(o.vertices, o.prob, rng)
	}

	var (
		issued   atomic.Int64
		deadline = time.Now().Add(o.duration)
		stats    = make([]topoWorkerStats, o.concurrency)
		wg       sync.WaitGroup
	)
	itemsPer := 1
	if o.batch > 0 {
		itemsPer = o.batch
	}
	start := time.Now()
	for w := 0; w < o.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			st.byShard = map[int][]time.Duration{}
			for {
				i := issued.Add(int64(itemsPer)) - int64(itemsPer)
				if o.total > 0 {
					if int(i) >= o.total {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				entry := top.Nodes[int(i)%o.replicas]
				if o.batch > 0 {
					items := make([]cluster.BatchItem, o.batch)
					for j := range items {
						items[j] = cluster.BatchItem{
							Graph:   graphs[(int(i)+j)%len(graphs)],
							Engine:  o.engine,
							NoCache: o.nocache,
						}
					}
					t0 := time.Now()
					outs, err := entry.SubmitBatch(context.Background(), items)
					perItem := time.Since(t0) / time.Duration(o.batch)
					if err != nil {
						st.failed += o.batch
						continue
					}
					for _, oc := range outs {
						st.observe(oc.Result, oc.Err, perItem)
					}
				} else {
					t0 := time.Now()
					res, err := entry.Submit(context.Background(), service.Request{
						Graph:   graphs[int(i)%len(graphs)],
						Engine:  o.engine,
						NoCache: o.nocache,
					})
					st.observe(res, err, time.Since(t0))
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var clean, deg []time.Duration
	byShard := map[int][]time.Duration{}
	ok, failed, peerHits, fallbacks := 0, 0, 0, 0
	for i := range stats {
		clean = append(clean, stats[i].clean...)
		deg = append(deg, stats[i].deg...)
		for s, lats := range stats[i].byShard {
			byShard[s] = append(byShard[s], lats...)
		}
		ok += stats[i].ok
		failed += stats[i].failed
		peerHits += stats[i].peerHits
		fallbacks += stats[i].fallbacks
	}

	kind := "single"
	if o.batch > 0 {
		kind = fmt.Sprintf("batch%d", o.batch)
	}
	fmt.Printf("# loadgen replicas=%d mode=%s %s engine=%s vertices=%d p=%.3f distinct=%d c=%d nocache=%v fault=%q\n",
		o.replicas, o.mode, kind, o.engine, o.vertices, o.prob, o.distinct, o.concurrency, o.nocache, o.faultSpec)
	fmt.Printf("items=%d ok=%d failed=%d elapsed=%.2fs throughput=%.1f items/s\n",
		ok+failed, ok, failed, elapsed.Seconds(), float64(ok)/elapsed.Seconds())
	label := "latency(clean)"
	if o.batch > 0 {
		label = "latency/item(clean)"
	}
	printLatency(label, clean)
	printLatency("latency(degraded)", deg)

	shards := make([]int, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		lats := byShard[s]
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Printf("shard %d: n=%d p50=%s p99=%s\n",
			s, len(lats), quantile(lats, 0.50), quantile(lats, 0.99))
	}

	// Cluster-wide view: routing volume, peer traffic, federation and
	// cache effectiveness per replica and aggregated.
	var agg cluster.Stats
	var hits, misses int64
	for i, cs := range top.Stats() {
		agg.RoutedRemote += cs.RoutedRemote
		agg.Proxied += cs.Proxied
		agg.Coalesced += cs.Coalesced
		agg.PeerCalls += cs.PeerCalls
		agg.PeerErrors += cs.PeerErrors
		agg.PeerServed += cs.PeerServed
		agg.PeerCacheHits += cs.PeerCacheHits
		agg.PeerCacheMisses += cs.PeerCacheMisses
		agg.FallbackLocal += cs.FallbackLocal
		ss := top.Nodes[i].Service().Stats()
		hits += ss.CacheHits
		misses += ss.CacheMisses
	}
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	fmt.Printf("cluster: routed=%d proxied=%d coalesced=%d peer_calls=%d peer_errors=%d peer_served=%d fallback_local=%d\n",
		agg.RoutedRemote, agg.Proxied, agg.Coalesced, agg.PeerCalls, agg.PeerErrors, agg.PeerServed, agg.FallbackLocal)
	fmt.Printf("cluster: cache hit ratio=%.3f (hits=%d misses=%d) peer_cache hits=%d misses=%d; client: peer_cache_hits=%d fallbacks=%d\n",
		ratio, hits, misses, agg.PeerCacheHits, agg.PeerCacheMisses, peerHits, fallbacks)

	if len(clean) == 0 {
		return nil, nil
	}
	sort.Slice(clean, func(i, j int) bool { return clean[i] < clean[j] })
	bp := benchPoint{
		Name:       fmt.Sprintf("Loadgen/cluster/r=%d/%s/%s", o.replicas, o.mode, kind),
		Pkg:        "gcacc/cmd/gca-loadgen",
		Iterations: int64(len(clean)),
		NsPerOp:    float64(quantile(clean, 0.50).Nanoseconds()),
		Metrics: map[string]float64{
			"p99_us":          float64(quantile(clean, 0.99).Microseconds()),
			"items/s":         float64(ok) / elapsed.Seconds(),
			"clients":         float64(o.concurrency),
			"cache_hit_ratio": ratio,
			"proxied":         float64(agg.Proxied),
			"peer_calls":      float64(agg.PeerCalls),
		},
	}
	points := []benchPoint{bp}
	for _, s := range shards {
		lats := byShard[s] // sorted above
		points = append(points, benchPoint{
			Name:       fmt.Sprintf("%s/shard%d", bp.Name, s),
			Pkg:        bp.Pkg,
			Iterations: int64(len(lats)),
			NsPerOp:    float64(quantile(lats, 0.50).Nanoseconds()),
			Metrics:    map[string]float64{"p99_us": float64(quantile(lats, 0.99).Microseconds())},
		})
	}
	return points, nil
}
