// Command gca-asm runs a GCA rule-language program (see internal/gcasm):
//
//	gca-asm -list                          # print the embedded Hirschberg program
//	gca-asm -in graph.el                   # run it on a graph (edge-list)
//	gca-asm -program rules.gca -cells 16 -n 4 -data 3,1,0,2,...   # raw field
//	gca-asm -program rules.gca -check -n 8 # statically verify, don't run
//
// With -in, the program is assumed to use the paper's (n+1)×n field
// contract (adjacency in the square cells' a fields, result in column 0).
// With -cells, the field is raw: -data seeds the d fields and the final
// field is printed.
//
// With -check, the program is statically verified (internal/gcasm/check:
// CRCW write conflicts, unknown registers, schedule defects, unreachable
// rules, out-of-range pointers) instead of executed. Exit status: 0 when
// the program is clean, 1 when the verifier reported findings or the
// program failed to parse, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gcacc/internal/gca"
	"gcacc/internal/gcasm"
	"gcacc/internal/gcasm/check"
	"gcacc/internal/graph"
)

func main() {
	var (
		programPath = flag.String("program", "", "program file (default: embedded Hirschberg)")
		list        = flag.Bool("list", false, "print the program source and generation list, then exit")
		in          = flag.String("in", "", "graph file for the Hirschberg field contract")
		format      = flag.String("format", "edges", "graph format: edges|matrix")
		cells       = flag.Int("cells", 0, "raw field size (alternative to -in)")
		n           = flag.Int("n", 0, "problem size for raw fields (defaults to -cells)")
		data        = flag.String("data", "", "comma-separated initial d values for raw fields")
		stats       = flag.Bool("stats", false, "print per-generation statistics")
		checkOnly   = flag.Bool("check", false, "statically verify the program and exit (no execution)")
	)
	flag.Parse()

	src := gcasm.HirschbergSource
	if *programPath != "" {
		b, err := os.ReadFile(*programPath)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}

	if *checkOnly {
		// The verifier runs on the permissive AST so that programs the
		// compiler rejects outright (CRCW conflicts) still get positioned
		// diagnostics. The default contract is the embedded program's
		// n·(n+1) field; -n and -cells adjust it.
		nn := *n
		if nn <= 0 {
			nn = 8
		}
		ds, err := check.VerifySource(src, check.Options{N: nn, Cells: *cells})
		if err != nil {
			fatal(err)
		}
		for _, d := range ds {
			fmt.Println(d)
		}
		if len(ds) > 0 {
			fmt.Fprintf(os.Stderr, "gca-asm: %d finding(s)\n", len(ds))
			os.Exit(1)
		}
		return
	}

	prog, err := gcasm.Parse(src)
	if err != nil {
		fatal(err)
	}

	if *list {
		fmt.Print(src)
		fmt.Println("\n# generations:", strings.Join(prog.Generations(), ", "))
		return
	}

	switch {
	case *in != "":
		g, err := readGraph(*in, *format)
		if err != nil {
			fatal(err)
		}
		nn := g.N()
		field := gca.NewField(nn * (nn + 1))
		adj := g.Adjacency()
		for j := 0; j < nn; j++ {
			for i := 0; i < nn; i++ {
				if adj.Get(j, i) {
					field.SetCell(j*nn+i, gca.Cell{A: 1})
				}
			}
		}
		res, err := prog.Run(gcasm.RunConfig{N: nn, Field: field, CollectStats: *stats})
		if err != nil {
			fatal(err)
		}
		for j := 0; j < nn; j++ {
			fmt.Printf("%d %d\n", j, field.Data(j*nn))
		}
		fmt.Printf("# generations=%d\n", res.Generations)
		printStats(res, *stats)

	case *cells > 0:
		size := *cells
		nn := *n
		if nn <= 0 {
			nn = size
		}
		field := gca.NewField(size)
		if *data != "" {
			parts := strings.Split(*data, ",")
			if len(parts) != size {
				fatal(fmt.Errorf("-data has %d values for %d cells", len(parts), size))
			}
			for i, p := range parts {
				v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
				if err != nil {
					fatal(err)
				}
				field.SetData(i, gca.Value(v))
			}
		}
		res, err := prog.Run(gcasm.RunConfig{N: nn, Field: field, CollectStats: *stats})
		if err != nil {
			fatal(err)
		}
		for i := 0; i < size; i++ {
			fmt.Printf("%d %d\n", i, field.Data(i))
		}
		fmt.Printf("# generations=%d\n", res.Generations)
		printStats(res, *stats)

	default:
		fmt.Fprintln(os.Stderr, "gca-asm: provide -in <graph> or -cells <size> (or -list)")
		os.Exit(2)
	}
}

func printStats(res *gcasm.RunResult, on bool) {
	if !on {
		return
	}
	fmt.Printf("# %-14s %-5s %-5s %-8s %-8s %-6s\n", "generation", "iter", "sub", "active", "reads", "maxδ")
	for _, r := range res.Records {
		fmt.Printf("# %-14s %-5d %-5d %-8d %-8d %-6d\n", r.GenName, r.Iteration, r.Sub, r.Active, r.Reads, r.MaxDelta)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gca-asm:", err)
	os.Exit(1)
}

func readGraph(path, format string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only input
	if format == "matrix" {
		return graph.ReadMatrix(f)
	}
	return graph.ReadEdgeList(f)
}
