// Command gca-sweep runs parameter sweeps over the paper's quantities and
// emits CSV, ready for plotting:
//
//	gca-sweep -experiment generations -max 256
//	gca-sweep -experiment congestion -max 64 -p 0.5
//	gca-sweep -experiment hw -max 512
//	gca-sweep -experiment models -max 64
//	gca-sweep -experiment walltime -max 128 -reps 3
//
// Every experiment doubles n from -min (default 2) to -max.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"gcacc/internal/congestion"
	"gcacc/internal/core"
	"gcacc/internal/graph"
	"gcacc/internal/hw"
	"gcacc/internal/pram"
)

func main() {
	var (
		experiment = flag.String("experiment", "generations", "generations|congestion|hw|models|walltime")
		minN       = flag.Int("min", 2, "smallest n")
		maxN       = flag.Int("max", 128, "largest n")
		p          = flag.Float64("p", 0.5, "edge probability")
		seed       = flag.Int64("seed", 2007, "random seed")
		reps       = flag.Int("reps", 1, "repetitions for walltime")
	)
	flag.Parse()

	var err error
	switch *experiment {
	case "generations":
		err = sweepGenerations(*minN, *maxN, *p, *seed)
	case "congestion":
		err = sweepCongestion(*minN, *maxN, *p, *seed)
	case "hw":
		err = sweepHW(*minN, *maxN)
	case "models":
		err = sweepModels(*minN, *maxN, *p, *seed)
	case "walltime":
		err = sweepWalltime(*minN, *maxN, *p, *seed, *reps)
	default:
		err = fmt.Errorf("unknown experiment %q", *experiment)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gca-sweep:", err)
		os.Exit(1)
	}
}

func sweepGenerations(minN, maxN int, p float64, seed int64) error {
	fmt.Println("n,logn,iterations,formula,executed,pram_steps")
	for n := minN; n <= maxN; n *= 2 {
		g := graph.Gnp(n, p, rand.New(rand.NewSource(seed)))
		res, err := core.ConnectedComponents(g)
		if err != nil {
			return err
		}
		pres, err := pram.Hirschberg(g, pram.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%d,%d,%d,%d,%d,%d\n",
			n, core.SubGenerations(n), res.Iterations,
			core.TotalGenerations(n), res.Generations, pres.Costs.Steps)
	}
	return nil
}

func sweepCongestion(minN, maxN int, p float64, seed int64) error {
	fmt.Println("n,generation,name,max_delta,reads_total,active_max")
	for n := minN; n <= maxN; n *= 2 {
		g := graph.Gnp(n, p, rand.New(rand.NewSource(seed)))
		rows, err := congestion.MeasureTable1(g)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%d,%d,%s,%d,%d,%d\n",
				n, r.Generation, r.Name, r.MaxDelta, r.ReadsTotal, r.ActiveMax)
		}
	}
	return nil
}

func sweepHW(minN, maxN int) error {
	fmt.Println("n,cells,data_width,register_bits,logic_elements,fmax_mhz,runtime_us")
	for n := minN; n <= maxN; n *= 2 {
		s := hw.Estimate(n)
		fmt.Printf("%d,%d,%d,%d,%d,%.2f,%.3f\n",
			n, s.Cells, s.DataWidth, s.RegisterBits, s.LogicElements, s.FMaxMHz, hw.RuntimeMicros(n))
	}
	return nil
}

func sweepModels(minN, maxN int, p float64, seed int64) error {
	fmt.Println("n,unit,replicated,tree,serial")
	for n := minN; n <= maxN; n *= 2 {
		g := graph.Gnp(n, p, rand.New(rand.NewSource(seed)))
		res, err := core.Run(g, core.Options{CollectStats: true})
		if err != nil {
			return err
		}
		c := congestion.CompareModels(res.Records)
		fmt.Printf("%d,%d,%d,%d,%d\n",
			n, c[congestion.Unit], c[congestion.Replicated], c[congestion.Tree], c[congestion.Serial])
	}
	return nil
}

func sweepWalltime(minN, maxN int, p float64, seed int64, reps int) error {
	fmt.Println("n,engine,best_ns")
	for n := minN; n <= maxN; n *= 2 {
		g := graph.Gnp(n, p, rand.New(rand.NewSource(seed)))
		best := func(f func() error) (int64, error) {
			var b int64 = 1<<63 - 1
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				if err := f(); err != nil {
					return 0, err
				}
				if d := time.Since(t0).Nanoseconds(); d < b {
					b = d
				}
			}
			return b, nil
		}
		gcaNs, err := best(func() error { _, err := core.ConnectedComponents(g); return err })
		if err != nil {
			return err
		}
		pramNs, err := best(func() error { _, err := pram.Hirschberg(g, pram.Options{}); return err })
		if err != nil {
			return err
		}
		seqNs, err := best(func() error { graph.ConnectedComponentsUnionFind(g); return nil })
		if err != nil {
			return err
		}
		fmt.Printf("%d,gca,%d\n%d,pram,%d\n%d,unionfind,%d\n", n, gcaNs, n, pramNs, n, seqNs)
	}
	return nil
}
