// Command gca-verify runs the cross-engine conformance harness
// (internal/verify) over the deterministic graph corpus and prints a
// machine-readable report.
//
//	gca-verify -n 64 -seed 1
//	gca-verify -n 128 -engines gca,pram -no-service -format text
//	gca-verify -sparse-n 1000000 -format text
//
// Every engine (and, unless -no-service is given, the serving-layer path)
// runs every corpus case; labellings are checked against the union-find
// ground truth, metamorphic invariants (vertex relabelling, edge order,
// intra-component edges, disjoint union) and the paper's analytic oracles
// (closed-form generation count, Table-1 read/congestion totals, canonical
// schedule). Exit status 0 means every check passed; 1 means at least one
// conformance failure (the report lists each one); 2 means the harness
// itself could not run.
//
// With -sparse-n the sparse harness runs instead: the edge-list engines
// (liutarjan with all its variants, logdiameter) and the sequential
// baseline over the sparse corpus (paths, stars, random m=2n, RMAT,
// planted forests) against union-find, at sizes far beyond the dense
// corpus — n = 10⁶ completes in seconds.
//
// With -stream-n the stream harness runs instead (verify.RunStream):
// seeded mutation traces over the sparse corpus replayed against the
// incremental streaming state, a periodic-full-recompute replica and a
// dense GCA-recompute replica, every query checked against a
// from-scratch union-find oracle. -fault replays the same traces under
// injected mid-batch aborts and recompute-step faults:
//
//	gca-verify -stream-n 10000 -format text
//	gca-verify -stream-n 1000 -fault seed=9,batcherr=0.1,steperr=0.02
//
// With -cluster-replicas the cluster harness runs instead
// (verify.RunCluster): the conformance corpus replayed through
// in-process multi-replica topologies, every request submitted through
// every replica — including deliberately wrong shards — with labels
// held bit-identical to the single-process path and the union-find
// ground truth, owners checked against the ring's deterministic
// placement, and the batch path conformed item for item:
//
//	gca-verify -cluster-replicas 1,2,4 -format text
//	gca-verify -cluster-replicas 2 -cluster-mode federate -engines gca
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gcacc"
	"gcacc/internal/cluster"
	"gcacc/internal/verify"
)

func main() {
	var (
		n           = flag.Int("n", 64, "corpus size budget (vertices per instance)")
		seed        = flag.Int64("seed", 1, "corpus and metamorphic seed")
		enginesCSV  = flag.String("engines", "", "comma-separated engine subset (default: all of "+strings.Join(gcacc.EngineNames(), ",")+")")
		noService   = flag.Bool("no-service", false, "skip the serving-layer path")
		noMeta      = flag.Bool("no-metamorphic", false, "skip the metamorphic invariant checks")
		noOracles   = flag.Bool("no-oracles", false, "skip the analytic Table-1/Table-2 oracle checks")
		faultSpec   = flag.String("fault", "", "add the fault-injected service path with this schedule (e.g. seed=7,steperr=0.01,stepdelay=0.05:200us,stall=0.02:1ms)")
		workers     = flag.Int("workers", 0, "simulator goroutines per run (0 = GOMAXPROCS)")
		format      = flag.String("format", "json", "report format: json|text")
		failuresCap = flag.Int("max-failures", 0, "truncate the failure list in the report (0 = keep all)")
		sparseN     = flag.Int("sparse-n", 0, "run the sparse harness at this vertex budget instead (edge-list engines vs union-find)")
		noVariants  = flag.Bool("no-variants", false, "sparse harness: skip the per-variant Liu–Tarjan runs")
		streamN     = flag.Int("stream-n", 0, "run the stream harness at this vertex budget instead (mutation traces vs union-find oracle)")
		clusterCSV  = flag.String("cluster-replicas", "", "run the cluster harness instead over these comma-separated replica counts (e.g. 1,2,4)")
		clusterMode = flag.String("cluster-mode", "proxy", "cluster harness routing mode: proxy|federate")
	)
	flag.Parse()

	if *clusterCSV != "" {
		opt := verify.ClusterOptions{N: *n, Seed: *seed, Workers: *workers}
		for _, s := range strings.Split(*clusterCSV, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || r < 1 {
				fmt.Fprintf(os.Stderr, "gca-verify: -cluster-replicas: bad replica count %q\n", s)
				os.Exit(2)
			}
			opt.Replicas = append(opt.Replicas, r)
		}
		mode, err := cluster.ParseMode(*clusterMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gca-verify:", err)
			os.Exit(2)
		}
		opt.Mode = mode
		if *enginesCSV != "" {
			for _, name := range strings.Split(*enginesCSV, ",") {
				e, err := gcacc.ParseEngine(strings.TrimSpace(name))
				if err != nil {
					fmt.Fprintln(os.Stderr, "gca-verify:", err)
					os.Exit(2)
				}
				opt.Engines = append(opt.Engines, e)
			}
		}
		rep, err := verify.RunCluster(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gca-verify:", err)
			os.Exit(2)
		}
		emit(rep, *format, *failuresCap)
		return
	}

	if *streamN > 0 {
		rep, err := verify.RunStream(verify.StreamOptions{
			N: *streamN, Seed: *seed, Workers: *workers, FaultSpec: *faultSpec,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gca-verify:", err)
			os.Exit(2)
		}
		emit(rep, *format, *failuresCap)
		return
	}

	if *sparseN > 0 {
		rep, err := verify.RunSparse(verify.SparseOptions{
			N: *sparseN, Seed: *seed, Workers: *workers, AllVariants: !*noVariants,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gca-verify:", err)
			os.Exit(2)
		}
		emit(rep, *format, *failuresCap)
		return
	}

	opt := verify.Options{
		N:           *n,
		Seed:        *seed,
		Service:     !*noService,
		Metamorphic: !*noMeta,
		Oracles:     !*noOracles,
		FaultSpec:   *faultSpec,
		Workers:     *workers,
	}
	if *enginesCSV != "" {
		for _, name := range strings.Split(*enginesCSV, ",") {
			e, err := gcacc.ParseEngine(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "gca-verify:", err)
				os.Exit(2)
			}
			opt.Engines = append(opt.Engines, e)
		}
	}

	rep, err := verify.Run(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gca-verify:", err)
		os.Exit(2)
	}
	emit(rep, *format, *failuresCap)
}

// emit prints the report in the requested format and exits non-zero on
// conformance failures.
func emit(rep *verify.Report, format string, failuresCap int) {
	if failuresCap > 0 && len(rep.Failures) > failuresCap {
		rep.Failures = rep.Failures[:failuresCap]
	}

	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "gca-verify: encoding report:", err)
			os.Exit(2)
		}
	case "text":
		fmt.Print(rep.Format())
	default:
		fmt.Fprintf(os.Stderr, "gca-verify: unknown format %q (json|text)\n", format)
		os.Exit(2)
	}

	if !rep.OK() {
		fmt.Fprintf(os.Stderr, "gca-verify: %d conformance failure(s)\n", len(rep.Failures))
		os.Exit(1)
	}
}
