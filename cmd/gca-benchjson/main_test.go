package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: gcacc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure2GCAProgram/n=128-8       248   4762154 ns/op   204.0 generations   434022 B/op   217 allocs/op
BenchmarkEngineWorkers/workers=1         247   4823898 ns/op   434022 B/op   217 allocs/op
PASS
ok  gcacc  13.688s
`

func TestParseSample(t *testing.T) {
	p, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if p.Goos != "linux" || p.Goarch != "amd64" || !strings.Contains(p.CPU, "Xeon") {
		t.Fatalf("header = %q/%q/%q", p.Goos, p.Goarch, p.CPU)
	}
	if len(p.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(p.Benchmarks))
	}
	b := p.Benchmarks[0]
	if b.Name != "Figure2GCAProgram/n=128" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b.Name)
	}
	if b.Pkg != "gcacc" || b.Iterations != 248 || b.NsPerOp != 4762154 ||
		b.BytesPerOp != 434022 || b.AllocsPerOp != 217 {
		t.Errorf("benchmark = %+v", b)
	}
	if b.Metrics["generations"] != 204 {
		t.Errorf("custom metric generations = %v, want 204", b.Metrics["generations"])
	}
	if p.Benchmarks[1].Name != "EngineWorkers/workers=1" {
		t.Errorf("second name = %q", p.Benchmarks[1].Name)
	}
}

func TestRunAppendsPoints(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run("seed", out, "2026-08-05", strings.NewReader(sample)); err != nil {
		t.Fatal(err)
	}
	if err := run("fast-path", out, "2026-08-05", strings.NewReader(sample)); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj Trajectory
	if err := json.Unmarshal(buf, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(traj.Points))
	}
	if traj.Points[0].Label != "seed" || traj.Points[1].Label != "fast-path" {
		t.Fatalf("labels = %q, %q", traj.Points[0].Label, traj.Points[1].Label)
	}
	if traj.Points[0].Date != "2026-08-05" {
		t.Fatalf("date = %q", traj.Points[0].Date)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run("x", "", "", strings.NewReader("PASS\n")); err == nil {
		t.Fatal("no error for input without benchmark lines")
	}
}
