// Command gca-benchjson converts `go test -bench` text output into a
// JSON trajectory point and appends it to a trajectory file, so the
// repo's wall-clock numbers accumulate as comparable, machine-readable
// records instead of scrollback:
//
//	go test -run='^$' -bench=. -benchmem ./... | gca-benchjson -label seed -out BENCH_20260805.json
//
// The output file holds one object with a "points" array; when it
// already exists the new point is appended, so successive runs (before
// and after an optimisation, or across machines) line up side by side.
// Benchmark lines are parsed into ns/op, B/op, allocs/op and any custom
// metrics (`52.00 generations`); goos/goarch/cpu/pkg header lines are
// attached to the point and to each benchmark respectively.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Point is one trajectory entry: a labelled benchmark run.
type Point struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Trajectory is the file format: points in append order.
type Trajectory struct {
	Points []Point `json:"points"`
}

func main() {
	var (
		label = flag.String("label", "local", "label for this trajectory point")
		out   = flag.String("out", "", "trajectory file to append to (default: stdout, no append)")
		date  = flag.String("date", "", "date stamp (default: today, YYYY-MM-DD)")
	)
	flag.Parse()

	if err := run(*label, *out, *date, os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "gca-benchjson:", err)
		os.Exit(1)
	}
}

func run(label, out, date string, in io.Reader) error {
	point, err := parse(in)
	if err != nil {
		return err
	}
	if len(point.Benchmarks) == 0 {
		return errors.New("no benchmark result lines on stdin (pipe `go test -bench` output)")
	}
	point.Label = label
	point.Date = date
	if point.Date == "" {
		point.Date = time.Now().Format("2006-01-02")
	}

	traj := &Trajectory{}
	if out != "" {
		if err := load(out, traj); err != nil {
			return err
		}
	}
	traj.Points = append(traj.Points, *point)

	buf, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gca-benchjson: %s: %d points (+%q with %d benchmarks)\n",
		out, len(traj.Points), label, len(point.Benchmarks))
	return nil
}

// load reads an existing trajectory file; a missing file is an empty
// trajectory, anything else malformed is an error rather than silently
// overwritten.
func load(path string, traj *Trajectory) error {
	buf, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(buf, traj); err != nil {
		return fmt.Errorf("%s: not a trajectory file: %w", path, err)
	}
	return nil
}

// parse scans `go test -bench` output: header lines (goos/goarch/cpu/pkg)
// and result lines of the form
//
//	BenchmarkName-8  1234  5678 ns/op  9.00 custom/metric  10 B/op  2 allocs/op
//
// The value/unit pairs after the iteration count are free-form; ns/op,
// B/op and allocs/op get dedicated fields, everything else lands in
// Metrics keyed by unit.
func parse(in io.Reader) (*Point, error) {
	point := &Point{}
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			point.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			point.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			point.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			if b == nil {
				continue // e.g. a "BenchmarkX" name echoed with -v
			}
			b.Pkg = pkg
			point.Benchmarks = append(point.Benchmarks, *b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return point, nil
}

func parseResult(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return nil, nil
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b := &Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q in %q: %w", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}
