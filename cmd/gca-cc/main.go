// Command gca-cc computes the connected components of an undirected graph
// on the simulated Global Cellular Automaton (or comparison engines):
//
//	gca-cc -in graph.txt -format matrix
//	gca-cc -in graph.el -format edges -engine pram
//	gca-cc -in million.el -sparse -engine liutarjan
//	gca-cc -in trace.txt -stream -engine liutarjan
//	echo '3 1
//	0 2' | gca-cc -format edges -stats
//
// It prints one "vertex label" pair per line, the component count, and —
// with -stats — the per-generation activity/congestion summary.
//
// -sparse switches to the streaming edge-list parser and the sparse
// edge-list representation: no n² structure is ever built, so inputs
// with millions of vertices work — with a sparse-capable engine
// (liutarjan, logdiameter, sequential, or the unionfind/bfs baselines).
//
// -stream replays a mutation trace (the "stream n" / "+ u v" / "- u v" /
// "?" text format of internal/stream) through the incremental streaming
// state: appends union in near-constant time, deletions force the next
// query through a full recompute on -engine, and -recompute-period
// schedules periodic full recomputes regardless.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gcacc"
	"gcacc/internal/congestion"
	"gcacc/internal/core"
	"gcacc/internal/graph"
	"gcacc/internal/pram"
	"gcacc/internal/sparse"
	"gcacc/internal/stream"
)

func main() {
	var (
		in     = flag.String("in", "-", "input file ('-' = stdin)")
		format = flag.String("format", "edges", "input format: edges|matrix")
		engine = flag.String("engine", "gca",
			"engine: "+strings.Join(gcacc.EngineNames(), "|")+"|bfs|dfs|unionfind")
		stats    = flag.Bool("stats", false, "print per-generation statistics (gca engine)")
		quiet    = flag.Bool("quiet", false, "suppress per-vertex output")
		sparseIn = flag.Bool("sparse", false, "stream the edge list into the sparse representation (no n² cap; edges format only)")
		streamIn = flag.Bool("stream", false, "replay a mutation trace (internal/stream text format) incrementally")
		period   = flag.Int("recompute-period", 0, "with -stream: force a full recompute every N accepted batches (0 = only after deletions)")
	)
	flag.Parse()

	if *streamIn {
		if err := runStream(*in, *engine, *period, *quiet); err != nil {
			fatal(err)
		}
		return
	}

	if *sparseIn {
		if *format != "edges" {
			fatal(fmt.Errorf("-sparse reads the edges format only, not %q", *format))
		}
		if err := runSparse(*in, *engine, *quiet); err != nil {
			fatal(err)
		}
		return
	}

	g, err := readGraph(*in, *format)
	if err != nil {
		fatal(err)
	}

	labels, extra, err := run(g, *engine, *stats)
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		for v, l := range labels {
			fmt.Printf("%d %d\n", v, l)
		}
	}
	fmt.Printf("# vertices=%d edges=%d components=%d engine=%s\n",
		g.N(), g.M(), graph.ComponentCount(labels), *engine)
	if extra != "" {
		fmt.Print(extra)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gca-cc:", err)
	os.Exit(1)
}

// runSparse is the million-vertex path: stream-parse, run a
// sparse-capable engine (or baseline), print the same output shape as
// the dense path.
func runSparse(path, engine string, quiet bool) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }() // read-only input
		r = f
	}
	g, err := sparse.ReadEdgeStream(r)
	if err != nil {
		return err
	}

	var labels []int
	var extra string
	switch engine {
	case "bfs":
		labels = sparse.ConnectedComponentsBFS(g)
	case "unionfind":
		labels = sparse.ConnectedComponentsUnionFind(g)
	default:
		eng, err := gcacc.ParseEngine(engine)
		if err != nil {
			return fmt.Errorf("%w (or a sparse baseline: bfs|unionfind)", err)
		}
		rep, err := gcacc.ConnectedComponentsSparse(context.Background(), g, gcacc.Options{Engine: eng})
		if err != nil {
			return err
		}
		labels = rep.Labels
		if rep.Generations > 0 {
			extra = fmt.Sprintf("# %s rounds=%d\n", eng, rep.Generations)
		}
	}

	if !quiet {
		for v, l := range labels {
			fmt.Printf("%d %d\n", v, l)
		}
	}
	fmt.Printf("# vertices=%d edges=%d components=%d engine=%s representation=sparse\n",
		g.N(), g.M(), sparse.ComponentCount(labels), engine)
	fmt.Print(extra)
	return nil
}

// runStream replays a mutation trace through the incremental streaming
// state: appends union in near-constant time, deletions dirty the graph
// and the next query pays one full recompute on the chosen engine. One
// line per query shows the labelling evolve; the final summary counts
// how often the incremental fast path sufficed.
func runStream(path, engine string, period int, quiet bool) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }() // read-only input
		r = f
	}
	tr, err := stream.ReadTrace(r)
	if err != nil {
		return err
	}
	eng, err := gcacc.ParseEngine(engine)
	if err != nil {
		return err
	}
	st, err := stream.NewState(tr.N, stream.Config{Engine: eng, RecomputePeriod: period})
	if err != nil {
		return err
	}

	ctx := context.Background()
	queries, recomputes := 0, 0
	var last *stream.Snapshot
	for i, op := range tr.Ops {
		switch op.Kind {
		case stream.OpQuery:
			snap, err := st.Components(ctx)
			if err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
			queries++
			if snap.Recomputed {
				recomputes++
			}
			fmt.Printf("# query %d: epoch=%d components=%d engine=%s", queries, snap.Epoch, snap.Components, snap.Engine)
			if snap.Recomputed {
				fmt.Printf(" rounds=%d", snap.Rounds)
			}
			fmt.Println()
			last = snap
		case stream.OpAppend:
			m, err := st.Append(ctx, op.Edges, stream.NoEpoch)
			if err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
			fmt.Printf("# + epoch=%d applied=%d ignored=%d\n", m.Epoch, m.Applied, m.Ignored)
		case stream.OpDelete:
			m, err := st.Delete(ctx, op.Edges, stream.NoEpoch)
			if err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
			fmt.Printf("# - epoch=%d applied=%d ignored=%d\n", m.Epoch, m.Applied, m.Ignored)
		}
	}
	if !quiet && last != nil {
		for v, l := range last.Labels {
			fmt.Printf("%d %d\n", v, l)
		}
	}
	info := st.Info()
	fmt.Printf("# vertices=%d edges=%d epoch=%d queries=%d recomputes=%d engine=%s representation=stream\n",
		info.N, info.Edges, info.Epoch, queries, recomputes, engine)
	return nil
}

func readGraph(path, format string) (*graph.Graph, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }() // read-only input
		r = f
	}
	switch format {
	case "edges":
		return graph.ReadEdgeList(r)
	case "matrix":
		return graph.ReadMatrix(r)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func run(g *graph.Graph, engine string, stats bool) (labels []int, extra string, err error) {
	// Sequential baselines that are not facade engines.
	switch engine {
	case "bfs":
		return graph.ConnectedComponentsBFS(g), "", nil
	case "dfs":
		return graph.ConnectedComponentsDFS(g), "", nil
	case "unionfind":
		return graph.ConnectedComponentsUnionFind(g), "", nil
	}

	// Everything else goes through the facade's shared engine parser.
	eng, err := gcacc.ParseEngine(engine)
	if err != nil {
		return nil, "", fmt.Errorf("%w (or a baseline: bfs|dfs|unionfind)", err)
	}
	switch eng {
	case gcacc.EngineGCA:
		res, err := core.Run(g, core.Options{CollectStats: stats})
		if err != nil {
			return nil, "", err
		}
		extra = fmt.Sprintf("# gca generations=%d iterations=%d (formula %d)\n",
			res.Generations, res.Iterations, core.TotalGenerations(g.N()))
		if stats {
			measured := congestion.AggregateFirstIteration(res)
			extra += congestion.FormatComparison(congestion.PaperTable1(g.N()), measured)
		}
		return res.Labels, extra, nil
	case gcacc.EnginePRAM:
		res, err := pram.Hirschberg(g, pram.Options{})
		if err != nil {
			return nil, "", err
		}
		c := res.Costs
		extra = fmt.Sprintf("# pram steps=%d work=%d reads=%d writes=%d maxδ=%d\n",
			c.Steps, c.Work, c.Reads, c.Writes, c.MaxReadCongestion)
		return res.Labels, extra, nil
	default:
		rep, err := gcacc.ConnectedComponentsWith(g, gcacc.Options{Engine: eng})
		if err != nil {
			return nil, "", err
		}
		if rep.Generations > 0 {
			extra = fmt.Sprintf("# %s generations=%d\n", eng, rep.Generations)
		}
		return rep.Labels, extra, nil
	}
}
