// Command gca-cc computes the connected components of an undirected graph
// on the simulated Global Cellular Automaton (or comparison engines):
//
//	gca-cc -in graph.txt -format matrix
//	gca-cc -in graph.el -format edges -engine pram
//	gca-cc -in million.el -sparse -engine liutarjan
//	echo '3 1
//	0 2' | gca-cc -format edges -stats
//
// It prints one "vertex label" pair per line, the component count, and —
// with -stats — the per-generation activity/congestion summary.
//
// -sparse switches to the streaming edge-list parser and the sparse
// edge-list representation: no n² structure is ever built, so inputs
// with millions of vertices work — with a sparse-capable engine
// (liutarjan, logdiameter, sequential, or the unionfind/bfs baselines).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gcacc"
	"gcacc/internal/congestion"
	"gcacc/internal/core"
	"gcacc/internal/graph"
	"gcacc/internal/pram"
	"gcacc/internal/sparse"
)

func main() {
	var (
		in     = flag.String("in", "-", "input file ('-' = stdin)")
		format = flag.String("format", "edges", "input format: edges|matrix")
		engine = flag.String("engine", "gca",
			"engine: "+strings.Join(gcacc.EngineNames(), "|")+"|bfs|dfs|unionfind")
		stats    = flag.Bool("stats", false, "print per-generation statistics (gca engine)")
		quiet    = flag.Bool("quiet", false, "suppress per-vertex output")
		sparseIn = flag.Bool("sparse", false, "stream the edge list into the sparse representation (no n² cap; edges format only)")
	)
	flag.Parse()

	if *sparseIn {
		if *format != "edges" {
			fatal(fmt.Errorf("-sparse reads the edges format only, not %q", *format))
		}
		if err := runSparse(*in, *engine, *quiet); err != nil {
			fatal(err)
		}
		return
	}

	g, err := readGraph(*in, *format)
	if err != nil {
		fatal(err)
	}

	labels, extra, err := run(g, *engine, *stats)
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		for v, l := range labels {
			fmt.Printf("%d %d\n", v, l)
		}
	}
	fmt.Printf("# vertices=%d edges=%d components=%d engine=%s\n",
		g.N(), g.M(), graph.ComponentCount(labels), *engine)
	if extra != "" {
		fmt.Print(extra)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gca-cc:", err)
	os.Exit(1)
}

// runSparse is the million-vertex path: stream-parse, run a
// sparse-capable engine (or baseline), print the same output shape as
// the dense path.
func runSparse(path, engine string, quiet bool) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }() // read-only input
		r = f
	}
	g, err := sparse.ReadEdgeStream(r)
	if err != nil {
		return err
	}

	var labels []int
	var extra string
	switch engine {
	case "bfs":
		labels = sparse.ConnectedComponentsBFS(g)
	case "unionfind":
		labels = sparse.ConnectedComponentsUnionFind(g)
	default:
		eng, err := gcacc.ParseEngine(engine)
		if err != nil {
			return fmt.Errorf("%w (or a sparse baseline: bfs|unionfind)", err)
		}
		rep, err := gcacc.ConnectedComponentsSparse(context.Background(), g, gcacc.Options{Engine: eng})
		if err != nil {
			return err
		}
		labels = rep.Labels
		if rep.Generations > 0 {
			extra = fmt.Sprintf("# %s rounds=%d\n", eng, rep.Generations)
		}
	}

	if !quiet {
		for v, l := range labels {
			fmt.Printf("%d %d\n", v, l)
		}
	}
	fmt.Printf("# vertices=%d edges=%d components=%d engine=%s representation=sparse\n",
		g.N(), g.M(), sparse.ComponentCount(labels), engine)
	fmt.Print(extra)
	return nil
}

func readGraph(path, format string) (*graph.Graph, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }() // read-only input
		r = f
	}
	switch format {
	case "edges":
		return graph.ReadEdgeList(r)
	case "matrix":
		return graph.ReadMatrix(r)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func run(g *graph.Graph, engine string, stats bool) (labels []int, extra string, err error) {
	// Sequential baselines that are not facade engines.
	switch engine {
	case "bfs":
		return graph.ConnectedComponentsBFS(g), "", nil
	case "dfs":
		return graph.ConnectedComponentsDFS(g), "", nil
	case "unionfind":
		return graph.ConnectedComponentsUnionFind(g), "", nil
	}

	// Everything else goes through the facade's shared engine parser.
	eng, err := gcacc.ParseEngine(engine)
	if err != nil {
		return nil, "", fmt.Errorf("%w (or a baseline: bfs|dfs|unionfind)", err)
	}
	switch eng {
	case gcacc.EngineGCA:
		res, err := core.Run(g, core.Options{CollectStats: stats})
		if err != nil {
			return nil, "", err
		}
		extra = fmt.Sprintf("# gca generations=%d iterations=%d (formula %d)\n",
			res.Generations, res.Iterations, core.TotalGenerations(g.N()))
		if stats {
			measured := congestion.AggregateFirstIteration(res)
			extra += congestion.FormatComparison(congestion.PaperTable1(g.N()), measured)
		}
		return res.Labels, extra, nil
	case gcacc.EnginePRAM:
		res, err := pram.Hirschberg(g, pram.Options{})
		if err != nil {
			return nil, "", err
		}
		c := res.Costs
		extra = fmt.Sprintf("# pram steps=%d work=%d reads=%d writes=%d maxδ=%d\n",
			c.Steps, c.Work, c.Reads, c.Writes, c.MaxReadCongestion)
		return res.Labels, extra, nil
	default:
		rep, err := gcacc.ConnectedComponentsWith(g, gcacc.Options{Engine: eng})
		if err != nil {
			return nil, "", err
		}
		if rep.Generations > 0 {
			extra = fmt.Sprintf("# %s generations=%d\n", eng, rep.Generations)
		}
		return rep.Labels, extra, nil
	}
}
