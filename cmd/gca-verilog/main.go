// Command gca-verilog emits the synthesizable Verilog description of the
// paper's fully parallel hardware design for a given graph — "the design
// was described in Verilog and synthesized for an ALTERA CYCLONE II FPGA"
// (paper, Section 4):
//
//	gca-verilog -n 16 > gca16.v             # G(16, 0.5) baked in
//	gca-verilog -in graph.el -format edges  # a specific graph
//
// It also prints the cost-model synthesis estimate for the design on
// stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"gcacc/internal/graph"
	"gcacc/internal/hw"
)

func main() {
	var (
		n      = flag.Int("n", 16, "graph size for the generated random graph")
		p      = flag.Float64("p", 0.5, "edge probability for the generated graph")
		seed   = flag.Int64("seed", 2007, "random seed")
		in     = flag.String("in", "", "optional input graph file (overrides -n)")
		format = flag.String("format", "edges", "input format: edges|matrix")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	if *in != "" {
		g, err = readGraph(*in, *format)
	} else {
		g = graph.Gnp(*n, *p, rand.New(rand.NewSource(*seed)))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gca-verilog:", err)
		os.Exit(1)
	}

	fmt.Print(hw.GenerateVerilog(g))
	fmt.Fprintf(os.Stderr, "// cost model: %s\n", hw.Estimate(g.N()))
}

func readGraph(path, format string) (*graph.Graph, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }() // read-only input
		r = f
	}
	if format == "matrix" {
		return graph.ReadMatrix(r)
	}
	return graph.ReadEdgeList(r)
}
