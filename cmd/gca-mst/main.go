// Command gca-mst computes a minimum spanning forest on the simulated
// GCA (Borůvka's algorithm via the paper's mapping recipe):
//
//	gca-mst -in grid.wel                  # "n m" header + "u v w" lines
//	gca-mst -random 24 -p 0.4 -seed 7     # synthetic instance
//	gca-mst -random 24 -engine pram       # the CROW-PRAM implementation
//
// It prints the forest edges, the total weight, and — for the GCA engine
// — the generation count against the paper's closed form.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"gcacc/internal/graph"
	"gcacc/internal/msf"
	"gcacc/internal/pram"
)

func main() {
	var (
		in     = flag.String("in", "", "weighted edge-list file ('-' = stdin)")
		random = flag.Int("random", 0, "generate a random instance with this many vertices")
		p      = flag.Float64("p", 0.4, "edge probability for -random")
		seed   = flag.Int64("seed", 2007, "seed for -random")
		engine = flag.String("engine", "gca", "engine: gca|pram|kruskal")
		quiet  = flag.Bool("quiet", false, "suppress per-edge output")
	)
	flag.Parse()

	var g *graph.Weighted
	var err error
	switch {
	case *in != "":
		g, err = readWeighted(*in)
	case *random > 0:
		g = graph.RandomWeighted(*random, *p, rand.New(rand.NewSource(*seed)))
	default:
		fmt.Fprintln(os.Stderr, "gca-mst: provide -in <file> or -random <n>")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	var forest *graph.MSF
	extra := ""
	switch *engine {
	case "gca":
		res, err := msf.Run(g, msf.Options{})
		if err != nil {
			fatal(err)
		}
		forest = res.MSF
		extra = fmt.Sprintf("# gca rounds=%d generations=%d (per round 3·log n + 8 = %d)\n",
			res.Rounds, res.Generations, msf.GenerationsPerRound(g.N()))
	case "pram":
		res, err := pram.Boruvka(g, pram.Options{})
		if err != nil {
			fatal(err)
		}
		forest = res.MSF
		c := res.Costs
		extra = fmt.Sprintf("# pram rounds=%d steps=%d work=%d\n", res.Rounds, c.Steps, c.Work)
	case "kruskal":
		forest = graph.KruskalMSF(g)
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	if !*quiet {
		for _, e := range forest.Edges {
			fmt.Printf("%d %d %d\n", e.U, e.V, e.W)
		}
	}
	fmt.Printf("# vertices=%d candidate_edges=%d forest_edges=%d total_weight=%d engine=%s\n",
		g.N(), g.M(), len(forest.Edges), forest.Weight, *engine)
	fmt.Print(extra)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gca-mst:", err)
	os.Exit(1)
}

func readWeighted(path string) (*graph.Weighted, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }() // read-only input
		r = f
	}
	return graph.ReadWeightedEdgeList(r)
}
