// Command gca-tables regenerates every table and figure of the paper:
//
//	gca-tables -all                 # everything, n = 16
//	gca-tables -table1 -n 16        # Table 1: active cells & congestion
//	gca-tables -table2 -n 16        # Table 2: generations per step
//	gca-tables -figure2             # Figure 2: the 12-generation rules
//	gca-tables -figure3             # Figure 3: access patterns for n = 4
//	gca-tables -synthesis           # Section 4: FPGA synthesis estimate
//	gca-tables -formula -n 1024     # Section 3: total-generation formula
//	gca-tables -models -n 16        # Section 4: congestion-remedy ablation
//
// The measurement graph defaults to G(n, p) with a fixed seed; -p, -seed
// and -graph change it.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"gcacc/internal/congestion"
	"gcacc/internal/core"
	"gcacc/internal/experiments"
	"gcacc/internal/graph"
	"gcacc/internal/hw"
	"gcacc/internal/ncell"
	"gcacc/internal/netsim"
	"gcacc/internal/trace"
)

func main() {
	var (
		n         = flag.Int("n", 16, "graph size (number of nodes)")
		seed      = flag.Int64("seed", 2007, "random seed for the measurement graph")
		p         = flag.Float64("p", 0.5, "edge probability for -graph gnp")
		graphKind = flag.String("graph", "gnp", "measurement graph: gnp|path|cycle|star|complete|cliques|empty")
		table1    = flag.Bool("table1", false, "print Table 1 (paper formulas vs measured)")
		table2    = flag.Bool("table2", false, "print Table 2 (generations per step)")
		figure2   = flag.Bool("figure2", false, "print Figure 2 (generation rules)")
		figure3   = flag.Bool("figure3", false, "print Figure 3 (access patterns, n = 4)")
		synthesis = flag.Bool("synthesis", false, "print the Section-4 synthesis estimate")
		formula   = flag.Bool("formula", false, "print the Section-3 generation-count formula sweep")
		models    = flag.Bool("models", false, "print the congestion timing-model ablation")
		ablation  = flag.Bool("ablation", false, "print the n-cell vs n²-cell design-space table")
		network   = flag.Bool("network", false, "print the butterfly/hashing congestion experiments (Section 1)")
		check     = flag.Bool("check", false, "run the machine-checkable reproduction registry and report PASS/FAIL")
		all       = flag.Bool("all", false, "print everything")
	)
	flag.Parse()

	if *all {
		*table1, *table2, *figure2, *figure3 = true, true, true, true
		*synthesis, *formula, *models, *ablation, *network, *check = true, true, true, true, true, true
	}
	if !(*table1 || *table2 || *figure2 || *figure3 || *synthesis || *formula || *models || *ablation || *network || *check) {
		flag.Usage()
		os.Exit(2)
	}

	if *figure2 {
		printFigure2()
	}
	if *figure3 {
		if err := printFigure3(); err != nil {
			fatal(err)
		}
	}
	if *table1 {
		g, err := makeGraph(*graphKind, *n, *p, *seed)
		if err != nil {
			fatal(err)
		}
		if err := printTable1(g); err != nil {
			fatal(err)
		}
	}
	if *table2 {
		printTable2(*n)
	}
	if *formula {
		printFormula(*n)
	}
	if *models {
		g, err := makeGraph(*graphKind, *n, *p, *seed)
		if err != nil {
			fatal(err)
		}
		if err := printModels(g); err != nil {
			fatal(err)
		}
	}
	if *synthesis {
		printSynthesis(*n)
	}
	if *ablation {
		if err := printAblation(*n, *p, *seed); err != nil {
			fatal(err)
		}
	}
	if *network {
		if err := printNetwork(); err != nil {
			fatal(err)
		}
	}
	if *check {
		if !runChecks() {
			os.Exit(1)
		}
	}
}

func runChecks() bool {
	fmt.Println("=== Reproduction registry: paper claims vs this implementation ===")
	ok := true
	for _, e := range experiments.All() {
		err := e.Validate()
		status := "PASS"
		if err != nil {
			status = "FAIL"
			ok = false
		}
		fmt.Printf("%-4s %-24s %s\n", status, e.ID, e.Claim)
		if err != nil {
			fmt.Printf("     ^ %v\n", err)
		}
	}
	fmt.Println()
	return ok
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gca-tables:", err)
	os.Exit(1)
}

func makeGraph(kind string, n int, p float64, seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "gnp":
		return graph.Gnp(n, p, rng), nil
	case "path":
		return graph.Path(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "star":
		return graph.Star(n), nil
	case "complete":
		return graph.Complete(n), nil
	case "cliques":
		size := 4
		if n < 4 {
			size = 1
		}
		return graph.DisjointCliques(n/size, size), nil
	case "empty":
		return graph.Empty(n), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func printFigure2() {
	fmt.Println("=== Figure 2: GCA algorithm — pointer operation and data operation per generation ===")
	rows := []struct {
		gen     string
		pointer string
		data    string
	}{
		{"0", "(local)", "d ← row(index)"},
		{"1", "p = col(index)·n", "d ← d*"},
		{"2", "p = n² + row(index)   [square only]", "if ((d≠d*) & (A=1)) ∨ row=n then d ← d else d ← ∞"},
		{"3 ×log n", "p = index + 2^sub    [row-guarded]", "if (d* < d) & row≠n then d ← d* else d ← d"},
		{"4", "if col=0 & row≠n: p = n² + row(index)", "if (a): if d=∞ then d ← d* else d ← d"},
		{"5", "p = col(index)·n", "if row=n then d ← d else d ← d*"},
		{"6", "p = n² + col(index)   [square only]", "if (d* = row) & (d ≠ row) then d ← d else d ← ∞"},
		{"7 ×log n", "(3a)", "(3b)"},
		{"8", "(4a)", "(4b)"},
		{"9", "p = row(index)·n   [square, col ≠ 0]", "d ← d*"},
		{"10 ×log n", "if col=0 & row≠n: p = d·n", "if col=0 & row≠n then d ← d* else d ← d"},
		{"11", "if col=0 & row≠n: p = d·n + 1", "if col=0 & row≠n then d ← min(d, d*) else d ← d"},
	}
	fmt.Printf("%-10s | %-42s | %s\n", "generation", "pointer operation", "data operation")
	fmt.Println(fmt.Sprintf("%0.0s-----------+--------------------------------------------+---------------------------------------------------", ""))
	for _, r := range rows {
		fmt.Printf("%-10s | %-42s | %s\n", r.gen, r.pointer, r.data)
	}
	fmt.Println("(Generation 6 uses the column-indexed read; see DESIGN.md deviation 1.)")
	fmt.Println()
}

func printFigure3() error {
	fmt.Println("=== Figure 3: access patterns for n = 4 (first iteration; '*' marks active cells) ===")
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	rec := trace.NewRecorder(0)
	_, err := core.Run(g, core.Options{
		CollectStats:    true,
		CapturePointers: true,
		Observer:        rec,
	})
	if err != nil {
		return err
	}
	for _, st := range rec.Steps() {
		if st.Ctx.Iteration > 0 {
			break
		}
		fmt.Printf("generation %d (%s), sub %d — %s\n",
			st.Ctx.Generation, core.GenerationName(st.Ctx.Generation), st.Ctx.Sub, trace.Summary(st))
		fmt.Println("access pattern (cell → global cell):")
		fmt.Print(trace.RenderAccessGrid(st, 5, 4))
		fmt.Println("data after the generation:")
		fmt.Print(trace.RenderDataGrid(st, 5, 4))
		fmt.Println()
	}
	return nil
}

func printTable1(g *graph.Graph) error {
	fmt.Printf("=== Table 1: generations per step — paper formulas vs measured (n=%d, m=%d) ===\n", g.N(), g.M())
	measured, err := congestion.MeasureTable1(g)
	if err != nil {
		return err
	}
	fmt.Print(congestion.FormatComparison(congestion.PaperTable1(g.N()), measured))
	fmt.Println("measured δ-groups (first sub-generation of each generation):")
	for _, m := range measured {
		fmt.Printf("  gen %-2d %-16s", m.Generation, m.Name)
		if len(m.Levels) == 0 {
			fmt.Print(" no reads")
		}
		for _, l := range m.Levels {
			fmt.Printf(" %d cells @ δ=%d;", l.Cells, l.Delta)
		}
		fmt.Println()
	}
	fmt.Println("\ndata-dependent congestion (Table 1's n̄, generations 10–11) by graph family:")
	points, err := congestion.ShortcutStudy(g.N(), 2007)
	if err != nil {
		return err
	}
	fmt.Print(congestion.FormatStudy(points))
	fmt.Println()
	return nil
}

func printTable2(n int) {
	fmt.Printf("=== Table 2: generations per step of the reference algorithm (n=%d, log n = %d) ===\n",
		n, core.SubGenerations(n))
	logn := core.SubGenerations(n)
	rows := []struct {
		step    int
		formula string
		count   int
	}{
		{1, "1", 1},
		{2, "1 + log(n) + 1 + 1", 3 + logn},
		{3, "1 + log(n) + 1 + 1", 3 + logn},
		{4, "1", 1},
		{5, "log(n)", logn},
		{6, "1", 1},
	}
	fmt.Printf("%-6s %-22s %s\n", "step", "formula", "generations")
	perIter := 0
	for _, r := range rows {
		fmt.Printf("%-6d %-22s %d\n", r.step, r.formula, r.count)
		if r.step >= 2 {
			perIter += r.count
		}
	}
	fmt.Printf("steps 2–6 per iteration: %d; total = 1 + log n·(3·log n + 8) = %d\n\n",
		perIter, core.TotalGenerations(n))
}

func printFormula(maxN int) {
	fmt.Println("=== Section 3: total generations, formula vs executed ===")
	fmt.Printf("%-8s %-10s %-10s %-10s\n", "n", "log n", "formula", "executed")
	for n := 2; n <= maxN; n *= 2 {
		g := graph.Path(n)
		res, err := core.ConnectedComponents(g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8d %-10d %-10d %-10d\n",
			n, core.SubGenerations(n), core.TotalGenerations(n), res.Generations)
	}
	fmt.Println()
}

func printModels(g *graph.Graph) error {
	fmt.Printf("=== Section 4: congestion-remedy timing models (n=%d) ===\n", g.N())
	res, err := core.Run(g, core.Options{CollectStats: true})
	if err != nil {
		return err
	}
	cmp := congestion.CompareModels(res.Records)
	fmt.Printf("%-12s %-12s %s\n", "model", "cycles", "vs unit")
	unit := cmp[congestion.Unit]
	for _, m := range []congestion.Model{congestion.Unit, congestion.Replicated, congestion.Tree, congestion.Serial} {
		fmt.Printf("%-12s %-12d %.2fx\n", m, cmp[m], float64(cmp[m])/float64(unit))
	}
	rowMax, colMax := congestion.PlanCongestion(g.N())
	fmt.Printf("rotated-replication plan congestion: row plan %d, column plan %d (paper: 1)\n\n", rowMax, colMax)
	return nil
}

func printAblation(maxN int, p float64, seed int64) error {
	fmt.Println("=== Section 3 design space: n cells vs n² cells ===")
	fmt.Printf("%-6s | %-10s %-12s %-12s | %-10s %-12s %-12s\n",
		"n", "n²: cells", "generations", "cell·gens", "n: cells", "generations", "cell·gens")
	for n := 2; n <= maxN; n *= 2 {
		g := graph.Gnp(n, p, rand.New(rand.NewSource(seed)))
		sq, err := core.ConnectedComponents(g)
		if err != nil {
			return err
		}
		lin, err := ncell.ConnectedComponents(g)
		if err != nil {
			return err
		}
		sqCells := n * (n + 1)
		fmt.Printf("%-6d | %-10d %-12d %-12d | %-10d %-12d %-12d\n",
			n, sqCells, sq.Generations, sqCells*sq.Generations,
			n, lin.Generations, n*lin.Generations)
		for i := range sq.Labels {
			if sq.Labels[i] != lin.Labels[i] {
				return fmt.Errorf("designs disagree at n=%d vertex %d", n, i)
			}
		}
	}
	fmt.Println("(both designs verified to produce identical labellings)")
	fmt.Println()
	return nil
}

func printNetwork() error {
	fmt.Println("=== Section 1: concurrent reads on a butterfly network, and hashed memory mapping ===")
	fmt.Printf("%-8s %-8s %-18s %-18s %-10s\n", "rows", "pattern", "plain cycles", "combining cycles", "merges")
	for _, k := range []int{4, 5, 6} {
		b := netsim.NewButterfly(k)
		n := b.Rows()
		allToOne := make([]netsim.Request, n)
		for i := range allToOne {
			allToOne[i] = netsim.Request{Source: i, Dest: 0}
		}
		plain, err := b.Route(allToOne, false)
		if err != nil {
			return err
		}
		comb, err := b.Route(allToOne, true)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-8s %-18d %-18d %-10d\n", n, "all→one", plain.Cycles, comb.Cycles, comb.Combined)
	}
	fmt.Println("\nuniversal hashing: m distinct addresses onto m modules (mean hottest-module load, 40 draws):")
	fmt.Printf("%-8s %-12s %-10s\n", "m", "avg max", "log2(m)")
	for _, m := range []int{16, 64, 256, 1024} {
		addrs := make([]int, m)
		for i := range addrs {
			addrs[i] = 7919 * i
		}
		avg := netsim.AverageMaxLoad(addrs, m, 40, int64(m))
		fmt.Printf("%-8d %-12.2f %-10d\n", m, avg, core.Log2Ceil(m))
	}
	fmt.Println("(the paper: hashing brings congestion down only to O(log p); same-address hot spots need combining or replication)")
	fmt.Println()
	return nil
}

func printSynthesis(n int) {
	fmt.Println("=== Section 4: FPGA synthesis — cost-model estimate vs published result ===")
	fmt.Printf("paper  (n=16): %s\n", hw.PaperReference())
	fmt.Printf("model  (n=16): %s\n", hw.Estimate(16))
	fmt.Println("\nscaling prediction:")
	fmt.Printf("%-6s %-8s %-8s %-12s %-14s %-10s %-12s\n",
		"n", "cells", "width", "registers", "logic elems", "fmax MHz", "runtime µs")
	for _, k := range []int{4, 8, 16, 32, 64, 128} {
		s := hw.Estimate(k)
		fmt.Printf("%-6d %-8d %-8d %-12d %-14d %-10.1f %-12.2f\n",
			k, s.Cells, s.DataWidth, s.RegisterBits, s.LogicElements, s.FMaxMHz, hw.RuntimeMicros(k))
	}
	if n != 16 {
		fmt.Printf("\nrequested n=%d: %s\n", n, hw.Estimate(n))
	}
	fmt.Println()
}
