// Command gca-lint runs the repository's static-analysis suite
// (internal/lint) over every package of the module: the GCA/PRAM model
// invariants (double-buffer discipline, rule purity), determinism and
// context-plumbing requirements of the simulator packages, concurrency
// hygiene (atomic access discipline, pool Close pairing, lock ordering),
// the serving layer's mutex convention, and discarded-error hygiene.
//
// With -gcasm it verifies GCA rule-language programs instead
// (internal/gcasm/check): CRCW write conflicts, unknown registers,
// unreachable rules, schedule defects and statically out-of-range
// pointers. Program files are given as arguments; with none, the
// embedded Hirschberg and list-ranking programs are verified under
// their field contracts.
//
// Usage:
//
//	gca-lint [-dir .] [-analyzers a,b] [-json] [-list]
//	gca-lint -gcasm [-n 8] [-cells N] [-json] [program.gca ...]
//
// Exit status, in both modes: 0 when clean, 1 when any diagnostic was
// reported, 2 when the input could not be loaded at all (no module,
// typecheck failure, unreadable or syntactically invalid program).
// Individual Go findings can be suppressed with a `//lint:ignore
// <analyzer> <reason>` comment on or directly above the flagged line;
// each directive suppresses at most one diagnostic, and the reason is
// mandatory — a directive without one is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gcacc/internal/gcasm"
	"gcacc/internal/gcasm/check"
	"gcacc/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	dir := flag.String("dir", ".", "module root to lint (must contain go.mod)")
	analyzersFlag := flag.String("analyzers", "", "comma-separated analyzer names (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list available analyzers and exit")
	gcasmMode := flag.Bool("gcasm", false, "verify gcasm rule programs (args; default: embedded programs)")
	nFlag := flag.Int("n", 8, "gcasm mode: problem size for the range and congestion checks")
	cellsFlag := flag.Int("cells", 0, "gcasm mode: field-cell contract for program files (0 = no upper bound)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if *gcasmMode {
		return runGcasm(flag.Args(), *nFlag, *cellsFlag, *jsonOut)
	}

	analyzers, err := lint.Select(*analyzersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	paths, err := loader.ModulePackages()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var diags []lint.Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		diags = append(diags, lint.RunAnalyzers(pkg, analyzers)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "gca-lint: %d finding(s) in %d package(s)\n", len(diags), len(paths))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// programDiagnostic is one verifier finding tagged with the program it
// came from, for the JSON output.
type programDiagnostic struct {
	Program string `json:"program"`
	check.Diagnostic
}

// runGcasm verifies rule programs: the named files, or the embedded
// programs under their known field contracts when no files are given.
func runGcasm(files []string, n, cells int, jsonOut bool) int {
	type target struct {
		name  string
		src   string
		cells int
	}
	var targets []target
	if len(files) == 0 {
		targets = []target{
			{"embedded:hirschberg", gcasm.HirschbergSource, n * (n + 1)},
			{"embedded:listrank", gcasm.ListRankSource, n},
		}
	} else {
		for _, path := range files {
			b, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gca-lint:", err)
				return 2
			}
			targets = append(targets, target{path, string(b), cells})
		}
	}

	var all []programDiagnostic
	for _, t := range targets {
		ds, err := check.VerifySource(t.src, check.Options{N: n, Cells: t.cells})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gca-lint: %s: %v\n", t.name, err)
			return 2
		}
		for _, d := range ds {
			all = append(all, programDiagnostic{Program: t.name, Diagnostic: d})
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []programDiagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Printf("%s:%s\n", d.Program, d.Diagnostic)
		}
		if len(all) > 0 {
			fmt.Fprintf(os.Stderr, "gca-lint: %d finding(s) in %d program(s)\n", len(all), len(targets))
		}
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}
