// Command gca-lint runs the repository's static-analysis suite
// (internal/lint) over every package of the module: the GCA/PRAM model
// invariants (double-buffer discipline, rule purity), determinism and
// context-plumbing requirements of the simulator packages, the serving
// layer's mutex convention, and discarded-error hygiene.
//
// Usage:
//
//	gca-lint [-dir .] [-analyzers a,b] [-json] [-list]
//
// Exit status: 0 when clean, 1 when any diagnostic was reported, 2 on
// load or typecheck failure. Individual findings can be suppressed with
// a `//lint:ignore <analyzer> <reason>` comment on or directly above the
// flagged line; each directive suppresses at most one diagnostic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gcacc/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	dir := flag.String("dir", ".", "module root to lint (must contain go.mod)")
	analyzersFlag := flag.String("analyzers", "", "comma-separated analyzer names (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.Select(*analyzersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	paths, err := loader.ModulePackages()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var diags []lint.Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		diags = append(diags, lint.RunAnalyzers(pkg, analyzers)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "gca-lint: %d finding(s) in %d package(s)\n", len(diags), len(paths))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
