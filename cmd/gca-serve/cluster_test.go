package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gcacc/internal/cluster"
	"gcacc/internal/fault"
	"gcacc/internal/graph"
	"gcacc/internal/service"
)

// Cluster-handler tests: the batch endpoint's per-item status contract
// (a batch is never all-or-nothing), the shard-owner header, redirect
// mode, and the merged stats shape. Handlers are exercised directly, as
// in main_test.go — no listener, no real peers.

// newStandaloneNode wires a single-member cluster node around svc, the
// same shape `gca-serve` runs without -peers.
func newStandaloneNode(t *testing.T, svc *service.Service) *cluster.Node {
	t.Helper()
	node, peerURLs, redirect, err := buildCluster(svc, clusterFlags{mode: "proxy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(peerURLs) != 0 || redirect {
		t.Fatalf("standalone buildCluster: peerURLs=%v redirect=%v", peerURLs, redirect)
	}
	return node
}

func postBatch(t *testing.T, h http.HandlerFunc, query string, req cluster.WireBatchRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/v1/components/batch"+query, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h(w, r)
	return w
}

func decodeBatch(t *testing.T, w *httptest.ResponseRecorder) cluster.WireBatchResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 (body %q)", w.Code, w.Body.String())
	}
	var resp cluster.WireBatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	return resp
}

func edgeList(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestBatchHandlerEmptyAndMalformed(t *testing.T) {
	svc := newTestService(t)
	h := batchHandler(newStandaloneNode(t, svc), 1<<20)

	w := postBatch(t, h, "", cluster.WireBatchRequest{})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status = %d, want 400 (body %q)", w.Code, w.Body.String())
	}
	errorBody(t, w)

	r := httptest.NewRequest(http.MethodPost, "/v1/components/batch", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	h(rec, r)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: status = %d, want 400", rec.Code)
	}
	errorBody(t, rec)
}

func TestBatchHandlerBodyTooLarge(t *testing.T) {
	svc := newTestService(t)
	h := batchHandler(newStandaloneNode(t, svc), 64) // 64-byte body cap
	w := postBatch(t, h, "", cluster.WireBatchRequest{Items: []cluster.WireItem{
		{Graph: edgeList(t, graph.Path(64))},
	}})
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status = %d, want 413 (body %q)", w.Code, w.Body.String())
	}
}

// TestBatchHandlerMixedOutcomes pins the never-all-or-nothing contract:
// a batch mixing good items, a dense-only engine above its cutoff, an
// unknown engine and a malformed graph answers 200 with per-item
// statuses 200/422/400/400 — failures never leak onto their siblings.
func TestBatchHandlerMixedOutcomes(t *testing.T) {
	svc := service.New(service.Config{
		QueueDepth: 8, Workers: 2, MaxVertices: 256, DenseCutoff: 8,
	})
	t.Cleanup(svc.Close)
	h := batchHandler(newStandaloneNode(t, svc), 1<<20)

	resp := decodeBatch(t, postBatch(t, h, "", cluster.WireBatchRequest{Items: []cluster.WireItem{
		{Graph: edgeList(t, graph.Path(4))},                           // fine on the default engine
		{Graph: edgeList(t, graph.Path(16)), Engine: "gca"},           // dense-only above cutoff
		{Graph: edgeList(t, graph.Path(4)), Engine: "no-such-engine"}, // 400 at decode
		{Graph: "3 1\n0\n"}, // malformed edge list
		{Graph: edgeList(t, graph.Path(16)), Engine: "liutarjan"}, // sparse-capable sibling
	}}))
	want := []int{200, 422, 400, 400, 200}
	if len(resp.Items) != len(want) {
		t.Fatalf("got %d outcomes, want %d", len(resp.Items), len(want))
	}
	for i, oc := range resp.Items {
		if oc.Status != want[i] {
			t.Errorf("item %d: status = %d (error %q), want %d", i, oc.Status, oc.Error, want[i])
		}
		if oc.Status != http.StatusOK && oc.Error == "" {
			t.Errorf("item %d: failed with empty error", i)
		}
	}
	if resp.Items[4].Components != 1 || len(resp.Items[4].Labels) != 16 {
		t.Errorf("sparse sibling: components=%d labels=%d, want 1 and 16",
			resp.Items[4].Components, len(resp.Items[4].Labels))
	}
}

// TestBatchHandlerDuplicatesCoalesce: two items with the same
// fingerprint and engine compute once; the duplicate reports Coalesced
// with identical labels.
func TestBatchHandlerDuplicatesCoalesce(t *testing.T) {
	svc := newTestService(t)
	h := batchHandler(newStandaloneNode(t, svc), 1<<20)

	el := edgeList(t, graph.Cycle(9))
	resp := decodeBatch(t, postBatch(t, h, "", cluster.WireBatchRequest{Items: []cluster.WireItem{
		{Graph: el}, {Graph: el},
	}}))
	if len(resp.Items) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(resp.Items))
	}
	for i, oc := range resp.Items {
		if oc.Status != http.StatusOK {
			t.Fatalf("item %d: status = %d (error %q)", i, oc.Status, oc.Error)
		}
	}
	if !resp.Items[1].Coalesced {
		t.Error("duplicate item not marked coalesced")
	}
	if fmt.Sprint(resp.Items[0].Labels) != fmt.Sprint(resp.Items[1].Labels) {
		t.Errorf("duplicate labels diverge: %v vs %v", resp.Items[0].Labels, resp.Items[1].Labels)
	}
	if got := svc.Stats().Completed; got != 1 {
		t.Errorf("service completed %d jobs for a coalesced pair, want 1", got)
	}
}

// TestBatchHandlerPerItemDeadline: with every engine step slowed well
// past 1ms, an item carrying timeout_ms=1 expires alone (504) while its
// undeadlined sibling completes.
func TestBatchHandlerPerItemDeadline(t *testing.T) {
	svc := service.New(service.Config{
		QueueDepth: 8, Workers: 2, MaxVertices: 256,
		Fault: fault.New(fault.Config{Seed: 1, StepDelayP: 1.0, StepDelay: 50 * time.Millisecond}),
	})
	t.Cleanup(svc.Close)
	h := batchHandler(newStandaloneNode(t, svc), 1<<20)

	resp := decodeBatch(t, postBatch(t, h, "", cluster.WireBatchRequest{Items: []cluster.WireItem{
		{Graph: edgeList(t, graph.Path(6)), TimeoutMS: 1, NoCache: true},
		{Graph: edgeList(t, graph.Star(6)), NoCache: true},
	}}))
	if resp.Items[0].Status != http.StatusGatewayTimeout {
		t.Errorf("deadlined item: status = %d (error %q), want 504", resp.Items[0].Status, resp.Items[0].Error)
	}
	if resp.Items[1].Status != http.StatusOK {
		t.Errorf("sibling: status = %d (error %q), want 200", resp.Items[1].Status, resp.Items[1].Error)
	}
}

// TestBatchHandlerClientDisconnect: a client gone before the batch runs
// surfaces as per-item 499 outcomes — the admission itself already
// succeeded, so the contract stays per-item even for abandonment.
func TestBatchHandlerClientDisconnect(t *testing.T) {
	svc := newTestService(t)
	h := batchHandler(newStandaloneNode(t, svc), 1<<20)

	body, err := json.Marshal(cluster.WireBatchRequest{Items: []cluster.WireItem{
		{Graph: edgeList(t, graph.Path(5)), NoCache: true},
		{Graph: edgeList(t, graph.Cycle(7)), NoCache: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest(http.MethodPost, "/v1/components/batch", bytes.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	h(w, r)
	resp := decodeBatch(t, w)
	for i, oc := range resp.Items {
		if oc.Status != 499 {
			t.Errorf("item %d after disconnect: status = %d (error %q), want 499", i, oc.Status, oc.Error)
		}
	}
}

// TestBatchHandlerLabelsToggle: ?labels=0 strips labels from successful
// outcomes without touching the rest of the payload.
func TestBatchHandlerLabelsToggle(t *testing.T) {
	svc := newTestService(t)
	h := batchHandler(newStandaloneNode(t, svc), 1<<20)
	resp := decodeBatch(t, postBatch(t, h, "?labels=0", cluster.WireBatchRequest{Items: []cluster.WireItem{
		{Graph: edgeList(t, graph.Path(4))},
	}}))
	if oc := resp.Items[0]; oc.Status != http.StatusOK || oc.Labels != nil || oc.N != 4 {
		t.Fatalf("labels=0 outcome: %+v", oc)
	}
}

func TestClusterHandlerOwnerHeader(t *testing.T) {
	svc := newTestService(t)
	node := newStandaloneNode(t, svc)
	h := clusterComponentsHandler(node, nil, false, 1<<20, false)

	w := postComponents(t, h, "", "4 2\n0 1\n2 3\n")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d (body %q), want 200", w.Code, w.Body.String())
	}
	if got := w.Header().Get(cluster.OwnerHeader); got != "0" {
		t.Errorf("%s = %q, want \"0\" on a single-member ring", cluster.OwnerHeader, got)
	}
	var resp clusterComponentsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Owner != 0 || resp.Served != 0 || resp.Proxied {
		t.Errorf("routing provenance: owner=%d served=%d proxied=%v, want 0/0/false",
			resp.Owner, resp.Served, resp.Proxied)
	}
	if resp.Components != 2 {
		t.Errorf("components = %d, want 2", resp.Components)
	}
}

// graphOwnedByMember searches small path graphs for one the ring places
// on the wanted member.
func graphOwnedByMember(t *testing.T, node *cluster.Node, member int) *graph.Graph {
	t.Helper()
	for n := 2; n < 2000; n++ {
		g := graph.Path(n)
		if node.Owner(g.Fingerprint()) == member {
			return g
		}
	}
	t.Fatalf("no small path graph owned by member %d", member)
	return nil
}

// TestClusterHandlerRedirect: in redirect mode a non-owned request
// answers 307 to the owner's public URL (query preserved, owner header
// set), while an owned request computes locally.
func TestClusterHandlerRedirect(t *testing.T) {
	svc := newTestService(t)
	node, peerURLs, redirect, err := buildCluster(svc, clusterFlags{
		peersCSV: "http://replica-a:8080,http://replica-b:8080/",
		self:     0,
		mode:     "redirect",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !redirect || len(peerURLs) != 2 {
		t.Fatalf("redirect=%v peerURLs=%v", redirect, peerURLs)
	}
	h := clusterComponentsHandler(node, peerURLs, redirect, 1<<20, false)

	remote := graphOwnedByMember(t, node, 1)
	w := postComponents(t, h, "?labels=0&engine=sequential", edgeList(t, remote))
	if w.Code != http.StatusTemporaryRedirect {
		t.Fatalf("non-owned request: status = %d (body %q), want 307", w.Code, w.Body.String())
	}
	wantLoc := "http://replica-b:8080/v1/components?labels=0&engine=sequential"
	if got := w.Header().Get("Location"); got != wantLoc {
		t.Errorf("Location = %q, want %q", got, wantLoc)
	}
	if got := w.Header().Get(cluster.OwnerHeader); got != "1" {
		t.Errorf("%s = %q, want \"1\"", cluster.OwnerHeader, got)
	}

	local := graphOwnedByMember(t, node, 0)
	w = postComponents(t, h, "", edgeList(t, local))
	if w.Code != http.StatusOK {
		t.Fatalf("owned request: status = %d (body %q), want 200", w.Code, w.Body.String())
	}
	if got := w.Header().Get(cluster.OwnerHeader); got != "0" {
		t.Errorf("%s = %q, want \"0\"", cluster.OwnerHeader, got)
	}
}

// TestStatsResponseShape: /v1/stats keeps the flat service fields
// (backward compatibility for existing clients) and nests the cluster
// snapshot under "cluster".
func TestStatsResponseShape(t *testing.T) {
	svc := newTestService(t)
	node := newStandaloneNode(t, svc)
	if _, err := svc.Submit(context.Background(), service.Request{Graph: graph.Path(3)}); err != nil {
		t.Fatal(err)
	}

	raw, err := json.Marshal(statsResponse{Stats: svc.Stats(), Cluster: node.Stats()})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"completed", "queue_capacity", "cache_hits", "cluster"} {
		if _, ok := m[key]; !ok {
			t.Errorf("stats response missing %q (keys: %d)", key, len(m))
		}
	}
	var cs cluster.Stats
	if err := json.Unmarshal(m["cluster"], &cs); err != nil {
		t.Fatalf("cluster snapshot does not decode: %v", err)
	}
	if len(cs.Members) != 1 || cs.Members[0] != 0 {
		t.Errorf("cluster members = %v, want [0]", cs.Members)
	}
}

func TestBuildClusterValidation(t *testing.T) {
	svc := newTestService(t)
	if _, _, _, err := buildCluster(svc, clusterFlags{mode: "nonsense"}); err == nil {
		t.Error("bad -cluster-mode accepted")
	}
	if _, _, _, err := buildCluster(svc, clusterFlags{
		peersCSV: "http://a,http://b", self: 2, mode: "proxy",
	}); err == nil {
		t.Error("-self outside -peers range accepted")
	}
}
