package main

// The sharded serving tier of gca-serve: N replicas form a static peer
// ring (-peers, -self), single requests route to their shard owner by
// consistent hashing on the graph fingerprint (proxy, redirect or
// cache-federate per -cluster-mode), and POST /v1/components/batch
// admits many graphs under one queue ticket, splitting them across
// owners. internal/cluster holds the routing machinery; this file is
// the HTTP skin.

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gcacc/internal/cluster"
	"gcacc/internal/service"
)

// clusterFlags carries the parsed -peers/-self/-cluster-* flags.
type clusterFlags struct {
	peersCSV     string
	self         int
	mode         string
	peerBudget   time.Duration
	vnodes       int
	batchItems   int
	batchTickets int
}

// buildCluster turns the flags into a wired node. Standalone (-peers
// empty) yields a single-member ring: batch admission still works, and
// every key is owned locally. redirect reports whether non-owned single
// requests should answer 307 instead of proxying.
func buildCluster(svc *service.Service, f clusterFlags) (node *cluster.Node, peerURLs []string, redirect bool, err error) {
	mode := cluster.ModeProxy
	switch f.mode {
	case "redirect":
		// The node still proxies batches; only single requests redirect.
		redirect = true
	default:
		mode, err = cluster.ParseMode(f.mode)
		if err != nil {
			return nil, nil, false, err
		}
	}

	members := []int{0}
	self := 0
	if f.peersCSV != "" {
		for _, u := range strings.Split(f.peersCSV, ",") {
			peerURLs = append(peerURLs, strings.TrimRight(strings.TrimSpace(u), "/"))
		}
		members = make([]int, len(peerURLs))
		for i := range members {
			members[i] = i
		}
		if f.self < 0 || f.self >= len(peerURLs) {
			return nil, nil, false, fmt.Errorf("-self %d outside -peers range [0,%d)", f.self, len(peerURLs))
		}
		self = f.self
	}

	node, err = cluster.NewNode(svc, cluster.Config{
		Self:          self,
		Members:       members,
		VNodes:        f.vnodes,
		Mode:          mode,
		PeerBudget:    f.peerBudget,
		BatchTickets:  f.batchTickets,
		MaxBatchItems: f.batchItems,
	})
	if err != nil {
		return nil, nil, false, err
	}
	if len(peerURLs) > 1 {
		peers := make(map[int]cluster.Peer, len(peerURLs)-1)
		for i, u := range peerURLs {
			if i != self {
				peers[i] = cluster.NewHTTPPeer(u, nil)
			}
		}
		node.SetPeers(peers)
		log.Printf("gca-serve: cluster member %d of %d (%s mode, peer budget %s)",
			self, len(peerURLs), f.mode, node.Config().PeerBudget)
	}
	return node, peerURLs, redirect, nil
}

// clusterComponentsResponse is the single-request body with routing
// provenance appended.
type clusterComponentsResponse struct {
	componentsResponse
	Owner         int  `json:"owner"`
	Served        int  `json:"served"`
	Proxied       bool `json:"proxied,omitempty"`
	PeerCacheHit  bool `json:"peer_cache_hit,omitempty"`
	FallbackLocal bool `json:"fallback_local,omitempty"`
}

// clusterComponentsHandler serves POST /v1/components on a multi-replica
// deployment: the request routes to its shard owner, and every response
// carries X-GCA-Shard-Owner. In redirect mode a non-owned request
// answers 307 to the owner's URL instead of proxying (the body travels
// again — 307 preserves method and body).
func clusterComponentsHandler(node *cluster.Node, peerURLs []string, redirect bool, maxBody int64, chaos bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, ok := parseComponents(w, r, maxBody, chaos)
		if !ok {
			return
		}
		owner := node.Owner(req.Graph.Fingerprint())
		w.Header().Set(cluster.OwnerHeader, strconv.Itoa(owner))
		if redirect && owner != node.Self() && owner < len(peerURLs) {
			loc := peerURLs[owner] + "/v1/components"
			if r.URL.RawQuery != "" {
				loc += "?" + r.URL.RawQuery
			}
			http.Redirect(w, r, loc, http.StatusTemporaryRedirect)
			return
		}
		res, err := node.Submit(r.Context(), req)
		if err != nil {
			writeError(w, cluster.StatusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, clusterComponentsResponse{
			componentsResponse: buildComponentsResponse(req.Graph.N(), res.Result,
				r.URL.Query().Get("labels") != "0"),
			Owner:         res.Owner,
			Served:        res.Served,
			Proxied:       res.Proxied,
			PeerCacheHit:  res.PeerCacheHit,
			FallbackLocal: res.FallbackLocal,
		})
	}
}

// batchHandler serves POST /v1/components/batch: a WireBatchRequest in,
// one WireOutcome per item out, in order. The response is 200 whenever
// the batch was admitted — failures are per-item (status 422, 504, …),
// never all-or-nothing. Admission failures map to 400 (empty), 413
// (too many items), 429 (no free batch ticket) or 503 (draining).
func batchHandler(node *cluster.Node, maxBody int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req cluster.WireBatchRequest
		if err := decodeJSONBody(w, r, maxBody, &req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, err)
			} else {
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		items := make([]cluster.BatchItem, len(req.Items))
		for i, wi := range req.Items {
			items[i] = cluster.DecodeWireItem(wi)
		}
		outs, err := node.SubmitBatch(r.Context(), items)
		if err != nil {
			writeError(w, cluster.StatusOf(err), err)
			return
		}
		withLabels := r.URL.Query().Get("labels") != "0"
		resp := cluster.WireBatchResponse{Items: make([]cluster.WireOutcome, len(outs))}
		for i, oc := range outs {
			resp.Items[i] = cluster.EncodeOutcome(oc, withLabels)
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// decodeJSONBody reads a bounded JSON request body. A body above
// maxBody answers 413 via the MaxBytesReader error surfacing through
// the decoder.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, maxBody int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return err
		}
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// statsResponse nests the cluster snapshot under the service stats; the
// embedded struct keeps the JSON surface of /v1/stats
// backward-compatible for clients that decode service.Stats alone.
type statsResponse struct {
	service.Stats
	Cluster cluster.Stats `json:"cluster"`
}
