package main

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"gcacc/internal/stream"
)

// The named-graph streaming API: long-lived graphs that absorb edge
// appends incrementally (union-find fast path) and answer component
// queries without a from-scratch run, falling back to a full bounded
// recompute after deletions.
//
//	PUT    /v1/graphs/{name}?n=1000        create a named graph
//	GET    /v1/graphs/{name}               graph info (epoch, edges, counters)
//	DELETE /v1/graphs/{name}               drop the graph
//	POST   /v1/graphs/{name}/edges         append a batch ("u v" lines)
//	DELETE /v1/graphs/{name}/edges         retract a batch
//	GET    /v1/graphs/{name}/components    labelling snapshot
//	GET    /v1/graphs                      list graphs + registry stats
//
// Mutations take an optional ?epoch=N precondition (optimistic
// concurrency): the mutation applies only if the graph's epoch still
// equals N, otherwise 409. Every accepted batch bumps the epoch by one.
// An unknown graph answers 404, a duplicate create 409, a batch over
// the admission limits 422, a malformed body or name 400, and a client
// that disconnects mid-recompute 499.

// streamAPI wires a stream.Registry onto the serving mux. It is a
// separate struct (not closures in main) so handler tests can mount it
// on a bare mux with an injected registry.
type streamAPI struct {
	reg     *stream.Registry
	maxBody int64
}

func newStreamAPI(reg *stream.Registry, maxBody int64) *streamAPI {
	return &streamAPI{reg: reg, maxBody: maxBody}
}

func (api *streamAPI) register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/graphs", api.list)
	mux.HandleFunc("PUT /v1/graphs/{name}", api.create)
	mux.HandleFunc("GET /v1/graphs/{name}", api.info)
	mux.HandleFunc("DELETE /v1/graphs/{name}", api.drop)
	mux.HandleFunc("POST /v1/graphs/{name}/edges", api.mutate(true))
	mux.HandleFunc("DELETE /v1/graphs/{name}/edges", api.mutate(false))
	mux.HandleFunc("GET /v1/graphs/{name}/components", api.components)
}

// epochParam parses the optional ?epoch=N precondition; absent means
// unconditional (stream.NoEpoch).
func epochParam(r *http.Request) (int64, error) {
	s := r.URL.Query().Get("epoch")
	if s == "" {
		return stream.NoEpoch, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad epoch %q (want a non-negative integer)", s)
	}
	return v, nil
}

func (api *streamAPI) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.reg.Stats())
}

func (api *streamAPI) create(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil || n < 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("bad vertex count %q (want ?n=<non-negative integer>)", r.URL.Query().Get("n")))
		return
	}
	st, err := api.reg.Create(name, n)
	if err != nil {
		writeError(w, streamStatusOf(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, st.Info())
}

func (api *streamAPI) info(w http.ResponseWriter, r *http.Request) {
	st, err := api.reg.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, streamStatusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st.Info())
}

func (api *streamAPI) drop(w http.ResponseWriter, r *http.Request) {
	if err := api.reg.Drop(r.PathValue("name")); err != nil {
		writeError(w, streamStatusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "dropped"})
}

// mutate serves both POST (append) and DELETE (retract) on /edges; the
// body is "u v" lines in either case, the batch is atomic, and the
// epoch precondition is checked before any edge applies.
func (api *streamAPI) mutate(appendOp bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		expect, err := epochParam(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		body := http.MaxBytesReader(w, r.Body, api.maxBody)
		edges, err := stream.ParseBatch(body, api.reg.Config().MaxBatch)
		if err != nil {
			var tooBig *http.MaxBytesError
			switch {
			case errors.As(err, &tooBig):
				writeError(w, http.StatusRequestEntityTooLarge, err)
			case errors.Is(err, stream.ErrBatchLimit):
				writeError(w, http.StatusUnprocessableEntity, err)
			default:
				// Anything else from the batch parser is a malformed body.
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		var m stream.Mutation
		if appendOp {
			m, err = api.reg.Append(r.Context(), name, edges, expect)
		} else {
			m, err = api.reg.Delete(r.Context(), name, edges, expect)
		}
		if err != nil {
			writeError(w, streamStatusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, m)
	}
}

func (api *streamAPI) components(w http.ResponseWriter, r *http.Request) {
	snap, err := api.reg.Components(r.Context(), r.PathValue("name"))
	if err != nil {
		writeError(w, streamStatusOf(err), err)
		return
	}
	if r.URL.Query().Get("labels") == "0" {
		snap.Labels = nil
	}
	writeJSON(w, http.StatusOK, snap)
}

// streamStatusOf maps streaming-tier errors onto HTTP status codes,
// deferring to the service mapping (and its 499/504 context cases) for
// everything it does not know.
func streamStatusOf(err error) int {
	switch {
	case errors.Is(err, stream.ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, stream.ErrGraphExists), errors.Is(err, stream.ErrEpochConflict):
		// Both are optimistic-concurrency conflicts: the resource state
		// the client assumed (absent graph, epoch N) no longer holds.
		return http.StatusConflict
	case errors.Is(err, stream.ErrGraphLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, stream.ErrBatchLimit), errors.Is(err, stream.ErrEdgeLimit),
		errors.Is(err, stream.ErrInvalidEdge):
		// Well-formed request the server understands but will not apply:
		// the batch or live-edge budget is exceeded, or an edge is out of
		// range for the named graph.
		return http.StatusUnprocessableEntity
	case errors.Is(err, stream.ErrBadName):
		return http.StatusBadRequest
	default:
		return statusOf(err)
	}
}
