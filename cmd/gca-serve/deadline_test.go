package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gcacc/internal/fault"
	"gcacc/internal/service"
)

// Deadline-edge tests: the handler's status mapping at the boundaries of
// a request's lifetime — client gone mid-run, deadline spent in the
// queue, deadline spent before the request even arrived. Each must map
// onto its documented code (499/504) without touching the simulator more
// than its budget allows.

// pathBody returns an n-vertex path graph in the edges wire format —
// enough generations that an injected per-step delay dominates the run.
func pathBody(n int) string {
	var b strings.Builder
	b.WriteString(itoa(n) + " " + itoa(n-1) + "\n")
	for i := 0; i < n-1; i++ {
		b.WriteString(itoa(i) + " " + itoa(i+1) + "\n")
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

// waitStats polls the service until cond holds or the deadline passes.
func waitStats(t *testing.T, svc *service.Service, cond func(service.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(svc.Stats()) {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("condition never held; stats: %+v", svc.Stats())
}

func TestComponentsHandlerDisconnectMidRun(t *testing.T) {
	// The client vanishes while the engine is mid-run. An injected
	// per-step delay stretches the run so the cancellation is guaranteed
	// to land between generations; the interrupted run must surface as
	// 499, not 500 or 504.
	svc := service.New(service.Config{
		QueueDepth:  4,
		Workers:     1,
		MaxVertices: 64,
		Fault: fault.New(fault.Config{
			Seed:       1,
			StepDelayP: 1,
			StepDelay:  2 * time.Millisecond,
		}),
	})
	t.Cleanup(svc.Close)
	h := componentsHandler(svc, 1<<20, false)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Long enough for the job to be admitted and start stepping
		// (each of the ~50 generations takes ≥ 2ms), short enough that
		// plenty of run remains to interrupt.
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	req := httptest.NewRequest(http.MethodPost, "/v1/components",
		strings.NewReader(pathBody(8))).WithContext(ctx)
	w := httptest.NewRecorder()
	h(w, req)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d (body %q)", w.Code, statusClientClosedRequest, w.Body.String())
	}
	errorBody(t, w)
}

func TestComponentsHandlerDeadlineExpiresInQueue(t *testing.T) {
	// A request whose deadline expires between queue admission and
	// engine start must answer 504 promptly — the worker discards the
	// dead job instead of running it — and the simulator must never see
	// it.
	svc := service.New(service.Config{
		QueueDepth:  4,
		Workers:     1,
		MaxVertices: 64,
		Fault: fault.New(fault.Config{
			Seed:       1,
			StepDelayP: 1,
			StepDelay:  2 * time.Millisecond,
		}),
	})
	t.Cleanup(svc.Close)
	h := componentsHandler(svc, 1<<20, false)

	// Occupy the only worker with a slow run (~50 generations × 2ms).
	blockerDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/components",
			strings.NewReader(pathBody(8)))
		w := httptest.NewRecorder()
		h(w, req)
		blockerDone <- w
	}()
	waitStats(t, svc, func(st service.Stats) bool {
		return st.InFlight == 1 && st.QueueDepth == 0
	})
	before := svc.Stats()

	// The victim: admitted behind the blocker, deadline far shorter than
	// the blocker's remaining runtime.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/components?engine=gca",
		strings.NewReader(pathBody(4))).WithContext(ctx)
	w := httptest.NewRecorder()
	start := time.Now()
	h(w, req)
	elapsed := time.Since(start)

	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %q)", w.Code, w.Body.String())
	}
	errorBody(t, w)
	// "Promptly": the 504 must not wait out the blocker's full run. The
	// blocker needs ≥ 100ms of injected delay; the victim's answer is
	// bounded by its own 2ms budget plus scheduling noise.
	if elapsed > 60*time.Millisecond {
		t.Errorf("504 took %v — the dead job waited on the running one", elapsed)
	}

	bw := <-blockerDone
	if bw.Code != http.StatusOK {
		t.Fatalf("blocker request failed: %d (body %q)", bw.Code, bw.Body.String())
	}
	var blocker componentsResponse
	if err := json.Unmarshal(bw.Body.Bytes(), &blocker); err != nil {
		t.Fatalf("decoding blocker response: %v", err)
	}
	after := svc.Stats()
	// Only the blocker ever reached the simulator: the generation total
	// grew by exactly the blocker's run, none by the victim's.
	if got := after.Generations - before.Generations; got != int64(blocker.Generations) {
		t.Errorf("simulator ran %d generations after the victim was admitted; only the blocker's %d were allowed",
			got, blocker.Generations)
	}
	if after.Canceled == 0 {
		t.Errorf("expired job not counted as canceled: %+v", after)
	}
}

func TestComponentsHandlerZeroBudgetDeadline(t *testing.T) {
	// A request arriving with its deadline already spent must be turned
	// away at admission — 504, nothing queued, nothing simulated.
	svc := newTestService(t)
	h := componentsHandler(svc, 1<<20, false)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/components",
		strings.NewReader("2 1\n0 1\n")).WithContext(ctx)
	w := httptest.NewRecorder()
	h(w, req)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %q)", w.Code, w.Body.String())
	}
	errorBody(t, w)

	st := svc.Stats()
	if st.RejectedExpired != 1 {
		t.Errorf("rejected_expired = %d, want 1", st.RejectedExpired)
	}
	if st.Accepted != 0 || st.Completed != 0 || st.Generations != 0 {
		t.Errorf("zero-budget request reached the service: %+v", st)
	}
}

func TestComponentsHandlerFaultParamGatedByChaos(t *testing.T) {
	svc := newTestService(t)

	// Chaos off: the fault parameter is an error, and the message names
	// the flag that would enable it.
	h := componentsHandler(svc, 1<<20, false)
	w := postComponents(t, h, "?fault=seed=1,steperr=0.5", "2 1\n0 1\n")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("chaos off: status = %d, want 400 (body %q)", w.Code, w.Body.String())
	}
	if msg := errorBody(t, w); !strings.Contains(msg, "-chaos") {
		t.Fatalf("error %q does not name the -chaos flag", msg)
	}

	// Chaos on, malformed spec: still 400.
	h = componentsHandler(svc, 1<<20, true)
	w = postComponents(t, h, "?fault=steperr=yes", "2 1\n0 1\n")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad spec: status = %d, want 400 (body %q)", w.Code, w.Body.String())
	}
	errorBody(t, w)

	// Chaos on, benign schedule: the request runs and succeeds.
	w = postComponents(t, h, "?fault=seed=1,stepdelay=0.1:10us", "2 1\n0 1\n")
	if w.Code != http.StatusOK {
		t.Fatalf("benign spec: status = %d, want 200 (body %q)", w.Code, w.Body.String())
	}
}
