package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gcacc/internal/service"
)

// Handler-level tests: every malformed or hostile request must map onto
// the documented status code — never a 500, never a panic. The handler is
// exercised directly (no listener) so the tests stay fast and
// deterministic.

func newTestService(t *testing.T) *service.Service {
	t.Helper()
	svc := service.New(service.Config{
		QueueDepth:  8,
		Workers:     2,
		MaxVertices: 256,
	})
	t.Cleanup(svc.Close)
	return svc
}

func postComponents(t *testing.T, h http.HandlerFunc, query, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/components"+query, strings.NewReader(body))
	w := httptest.NewRecorder()
	h(w, req)
	return w
}

// errorBody decodes the JSON error envelope and fails the test if the
// response is not one — error paths must stay machine-readable.
func errorBody(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var m map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatalf("error response is not a JSON object: %v (body %q)", err, w.Body.String())
	}
	if m["error"] == "" {
		t.Fatalf("error response missing %q field: %q", "error", w.Body.String())
	}
	return m["error"]
}

func TestComponentsHandlerSuccess(t *testing.T) {
	h := componentsHandler(newTestService(t), 1<<20, false)
	w := postComponents(t, h, "", "4 2\n0 1\n2 3\n")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %q)", w.Code, w.Body.String())
	}
	var resp componentsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.N != 4 || resp.Components != 2 {
		t.Fatalf("got n=%d components=%d, want n=4 components=2", resp.N, resp.Components)
	}
	if want := []int{0, 0, 2, 2}; len(resp.Labels) != len(want) {
		t.Fatalf("labels = %v, want %v", resp.Labels, want)
	} else {
		for i := range want {
			if resp.Labels[i] != want[i] {
				t.Fatalf("labels = %v, want %v", resp.Labels, want)
			}
		}
	}
}

// TestComponentsHandlerDenseOnlyAboveCutoff pins the dense-engine
// guardrail end to end: a graph above the dense cutoff requested on a
// dense-only engine answers 422 with an error naming the cutoff and a
// way out — not the OOM-shaped timeout a (n+1)×n cell field would
// produce. The same graph on a sparse-capable engine succeeds.
func TestComponentsHandlerDenseOnlyAboveCutoff(t *testing.T) {
	svc := service.New(service.Config{
		QueueDepth:  8,
		Workers:     2,
		MaxVertices: 256,
		DenseCutoff: 16, // small override so the test graph stays tiny
	})
	t.Cleanup(svc.Close)
	h := componentsHandler(svc, 1<<20, false)

	body := "17 1\n0 16\n"
	w := postComponents(t, h, "?engine=gca", body)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("dense engine above cutoff: status = %d, want 422 (body %q)", w.Code, w.Body.String())
	}
	msg := errorBody(t, w)
	if !strings.Contains(msg, "dense") || !strings.Contains(msg, "liutarjan") {
		t.Fatalf("422 error %q does not explain the cutoff or name a sparse engine", msg)
	}

	for _, engine := range []string{"liutarjan", "logdiameter", "sequential"} {
		w := postComponents(t, h, "?engine="+engine, body)
		if w.Code != http.StatusOK {
			t.Fatalf("sparse engine %s above cutoff: status = %d, want 200 (body %q)", engine, w.Code, w.Body.String())
		}
	}

	// At or below the cutoff the dense engine still works.
	w = postComponents(t, h, "?engine=gca", "16 1\n0 15\n")
	if w.Code != http.StatusOK {
		t.Fatalf("dense engine at cutoff: status = %d, want 200 (body %q)", w.Code, w.Body.String())
	}
}

func TestComponentsHandlerUnknownEngine(t *testing.T) {
	h := componentsHandler(newTestService(t), 1<<20, false)
	w := postComponents(t, h, "?engine=quantum", "2 1\n0 1\n")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", w.Code)
	}
	if msg := errorBody(t, w); !strings.Contains(msg, "quantum") {
		t.Fatalf("error %q does not name the rejected engine", msg)
	}
}

func TestComponentsHandlerUnknownFormat(t *testing.T) {
	h := componentsHandler(newTestService(t), 1<<20, false)
	w := postComponents(t, h, "?format=xml", "2 1\n0 1\n")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", w.Code)
	}
	errorBody(t, w)
}

func TestComponentsHandlerMalformedBody(t *testing.T) {
	h := componentsHandler(newTestService(t), 1<<20, false)
	for _, body := range []string{
		"this is not a graph",
		"3 1\n0 9\n", // endpoint out of range
		"2 2\n0 1\n", // fewer edges than the header promises
		"-1 0\n",     // negative vertex count
		"2 1\nx y\n", // non-numeric edge endpoints
	} {
		w := postComponents(t, h, "", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400 (response %q)", body, w.Code, w.Body.String())
			continue
		}
		errorBody(t, w)
	}
}

func TestComponentsHandlerOversizedBody(t *testing.T) {
	// A 64-byte cap makes the MaxBytesReader trip mid-parse; the handler
	// must surface that as 413, not as a generic parse failure.
	h := componentsHandler(newTestService(t), 64, false)
	var b strings.Builder
	fmt.Fprintf(&b, "40 39\n")
	for i := 0; i < 39; i++ {
		fmt.Fprintf(&b, "%d %d\n", i, i+1)
	}
	w := postComponents(t, h, "", b.String())
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %q)", w.Code, w.Body.String())
	}
	errorBody(t, w)
}

func TestComponentsHandlerClientDisconnect(t *testing.T) {
	// A client that vanishes mid-request surfaces as a canceled request
	// context. The handler must answer 499 (client closed request), not
	// 500: the failure is the client's, and dashboards alerting on 5xx
	// must not page for it.
	h := componentsHandler(newTestService(t), 1<<20, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/components", strings.NewReader("2 1\n0 1\n")).WithContext(ctx)
	w := httptest.NewRecorder()
	h(w, req)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d (body %q)", w.Code, statusClientClosedRequest, w.Body.String())
	}
	errorBody(t, w)
}

func TestComponentsHandlerQueueFullAndClosed(t *testing.T) {
	// Submitting to a closed service must map to 503; the Retry-After
	// header is reserved for 429.
	svc := service.New(service.Config{QueueDepth: 1, Workers: 1, MaxVertices: 16})
	svc.Close()
	h := componentsHandler(svc, 1<<20, false)
	w := postComponents(t, h, "", "2 1\n0 1\n")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %q)", w.Code, w.Body.String())
	}
	errorBody(t, w)
	if got := w.Header().Get("Retry-After"); got != "" {
		t.Fatalf("503 carries Retry-After %q; only 429 should", got)
	}
}

func TestStatusOf(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{service.ErrQueueFull, http.StatusTooManyRequests},
		{service.ErrTooLarge, http.StatusRequestEntityTooLarge},
		{service.ErrDenseOnly, http.StatusUnprocessableEntity},
		{service.ErrClosed, http.StatusServiceUnavailable},
		{service.ErrBreakerOpen, http.StatusServiceUnavailable},
		{service.ErrInvalidEngine, http.StatusBadRequest},
		{service.ErrNilGraph, http.StatusBadRequest},
		{service.ErrEnginePanic, http.StatusInternalServerError},
		{context.Canceled, statusClientClosedRequest},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{errors.New("mystery"), http.StatusInternalServerError},
		{fmt.Errorf("wrapped: %w", context.Canceled), statusClientClosedRequest},
		{fmt.Errorf("wrapped: %w", service.ErrQueueFull), http.StatusTooManyRequests},
	}
	for _, c := range cases {
		if got := statusOf(c.err); got != c.want {
			t.Errorf("statusOf(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
