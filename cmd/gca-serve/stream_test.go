package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gcacc"
	"gcacc/internal/fault"
	"gcacc/internal/stream"
)

// Named-graph API tests: the streaming endpoints must map every failure
// onto the documented status — 404 for an unknown graph, 409 for a lost
// epoch race, 422 for an over-limit batch, 499 for a client that
// disconnects mid-recompute — and a clean mutate/query cycle must carry
// the epoch through exactly.

func newStreamMux(t *testing.T, cfg stream.RegistryConfig) *http.ServeMux {
	t.Helper()
	mux := http.NewServeMux()
	newStreamAPI(stream.NewRegistry(cfg), 1<<20).register(mux)
	return mux
}

func do(mux *http.ServeMux, method, target, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, strings.NewReader(body))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	return w
}

func TestStreamLifecycle(t *testing.T) {
	mux := newStreamMux(t, stream.RegistryConfig{})

	if w := do(mux, http.MethodPut, "/v1/graphs/g?n=6", ""); w.Code != http.StatusCreated {
		t.Fatalf("create: status %d (body %q)", w.Code, w.Body.String())
	}
	w := do(mux, http.MethodPost, "/v1/graphs/g/edges?epoch=0", "0 1\n1 2\n4 5\n")
	if w.Code != http.StatusOK {
		t.Fatalf("append: status %d (body %q)", w.Code, w.Body.String())
	}
	var m stream.Mutation
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 1 || m.Applied != 3 {
		t.Fatalf("append: %+v, want epoch 1 applied 3", m)
	}

	w = do(mux, http.MethodGet, "/v1/graphs/g/components", "")
	if w.Code != http.StatusOK {
		t.Fatalf("components: status %d (body %q)", w.Code, w.Body.String())
	}
	var snap stream.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 || snap.Components != 3 || len(snap.Labels) != 6 {
		t.Fatalf("components: %+v, want epoch 1, 3 components, 6 labels", snap)
	}

	w = do(mux, http.MethodDelete, "/v1/graphs/g/edges?epoch=1", "1 2\n")
	if w.Code != http.StatusOK {
		t.Fatalf("retract: status %d (body %q)", w.Code, w.Body.String())
	}
	w = do(mux, http.MethodGet, "/v1/graphs/g/components?labels=0", "")
	if w.Code != http.StatusOK {
		t.Fatalf("components after retract: status %d", w.Code)
	}
	snap = stream.Snapshot{}
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Components != 4 || !snap.Recomputed || snap.Labels != nil {
		t.Fatalf("after retract: %+v, want 4 components via recompute, labels elided", snap)
	}

	if w := do(mux, http.MethodGet, "/v1/graphs", ""); w.Code != http.StatusOK ||
		!strings.Contains(w.Body.String(), `"g"`) {
		t.Fatalf("list: status %d (body %q)", w.Code, w.Body.String())
	}
	if w := do(mux, http.MethodDelete, "/v1/graphs/g", ""); w.Code != http.StatusOK {
		t.Fatalf("drop: status %d", w.Code)
	}
	if w := do(mux, http.MethodGet, "/v1/graphs/g", ""); w.Code != http.StatusNotFound {
		t.Fatalf("info after drop: status %d, want 404", w.Code)
	}
}

func TestStreamUnknownGraph404(t *testing.T) {
	mux := newStreamMux(t, stream.RegistryConfig{})
	for _, tc := range []struct{ method, target, body string }{
		{http.MethodGet, "/v1/graphs/nope", ""},
		{http.MethodDelete, "/v1/graphs/nope", ""},
		{http.MethodPost, "/v1/graphs/nope/edges", "0 1\n"},
		{http.MethodDelete, "/v1/graphs/nope/edges", "0 1\n"},
		{http.MethodGet, "/v1/graphs/nope/components", ""},
	} {
		if w := do(mux, tc.method, tc.target, tc.body); w.Code != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", tc.method, tc.target, w.Code)
		}
	}
}

func TestStreamEpochConflict409(t *testing.T) {
	mux := newStreamMux(t, stream.RegistryConfig{})
	do(mux, http.MethodPut, "/v1/graphs/g?n=4", "")
	do(mux, http.MethodPost, "/v1/graphs/g/edges", "0 1\n") // epoch now 1

	w := do(mux, http.MethodPost, "/v1/graphs/g/edges?epoch=0", "2 3\n")
	if w.Code != http.StatusConflict {
		t.Fatalf("stale epoch: status %d, want 409 (body %q)", w.Code, w.Body.String())
	}
	errorBody(t, w)
	// The losing writer re-reads and retries with the current epoch.
	if w := do(mux, http.MethodPost, "/v1/graphs/g/edges?epoch=1", "2 3\n"); w.Code != http.StatusOK {
		t.Fatalf("retry at current epoch: status %d", w.Code)
	}
	// Creating over an existing name is the same conflict class.
	if w := do(mux, http.MethodPut, "/v1/graphs/g?n=4", ""); w.Code != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", w.Code)
	}
}

func TestStreamOverLimitBatch422(t *testing.T) {
	mux := newStreamMux(t, stream.RegistryConfig{MaxBatch: 2, MaxEdges: 3})
	do(mux, http.MethodPut, "/v1/graphs/g?n=8", "")

	w := do(mux, http.MethodPost, "/v1/graphs/g/edges", "0 1\n1 2\n2 3\n")
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("batch over MaxBatch: status %d, want 422 (body %q)", w.Code, w.Body.String())
	}
	// Two two-edge batches exhaust the live-edge budget; the third trips it.
	do(mux, http.MethodPost, "/v1/graphs/g/edges", "0 1\n1 2\n")
	if w := do(mux, http.MethodPost, "/v1/graphs/g/edges", "2 3\n3 4\n"); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("batch over MaxEdges: status %d, want 422", w.Code)
	}
	// Out-of-range and self-loop edges are semantic rejections, not parse errors.
	if w := do(mux, http.MethodPost, "/v1/graphs/g/edges", "0 99\n"); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("out-of-range edge: status %d, want 422", w.Code)
	}
	// A non-numeric body is malformed: 400, not 422.
	if w := do(mux, http.MethodPost, "/v1/graphs/g/edges", "zero one\n"); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", w.Code)
	}
}

func TestStreamClientDisconnect499(t *testing.T) {
	// A fault schedule that delays every recompute step pins the handler
	// inside the engine long enough for the client to walk away.
	inj := fault.New(fault.Config{Seed: 1, StepDelayP: 1, StepDelay: 20 * time.Millisecond})
	mux := newStreamMux(t, stream.RegistryConfig{
		Engine: gcacc.EngineLiuTarjan,
		Fault:  inj,
	})
	do(mux, http.MethodPut, "/v1/graphs/g?n=64", "")
	var body strings.Builder
	for v := 1; v < 64; v++ {
		fmt.Fprintf(&body, "%d %d\n", v-1, v)
	}
	do(mux, http.MethodPost, "/v1/graphs/g/edges", body.String())
	// A deletion dirties the graph, so the next query must recompute.
	do(mux, http.MethodDelete, "/v1/graphs/g/edges", "30 31\n")

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/graphs/g/components", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	time.AfterFunc(5*time.Millisecond, cancel)
	mux.ServeHTTP(w, req)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("disconnect mid-recompute: status %d, want %d (body %q)",
			w.Code, statusClientClosedRequest, w.Body.String())
	}

	// The graph is still dirty but not poisoned: a patient client gets the
	// correct labelling afterwards.
	w = do(mux, http.MethodGet, "/v1/graphs/g/components", "")
	if w.Code != http.StatusOK {
		t.Fatalf("query after disconnect: status %d (body %q)", w.Code, w.Body.String())
	}
	var snap stream.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Components != 2 || !snap.Recomputed {
		t.Fatalf("query after disconnect: %+v, want 2 components via recompute", snap)
	}
}

func TestStreamBadRequests(t *testing.T) {
	mux := newStreamMux(t, stream.RegistryConfig{MaxGraphs: 1})
	for _, tc := range []struct {
		name   string
		method string
		target string
		want   int
	}{
		{"createNoN", http.MethodPut, "/v1/graphs/g", http.StatusBadRequest},
		{"createBadN", http.MethodPut, "/v1/graphs/g?n=x", http.StatusBadRequest},
		{"createNegativeN", http.MethodPut, "/v1/graphs/g?n=-1", http.StatusBadRequest},
		{"badName", http.MethodPut, "/v1/graphs/bad%20name?n=4", http.StatusBadRequest},
		{"badEpoch", http.MethodPost, "/v1/graphs/g/edges?epoch=x", http.StatusBadRequest},
		{"negativeEpoch", http.MethodPost, "/v1/graphs/g/edges?epoch=-2", http.StatusBadRequest},
	} {
		if w := do(mux, tc.method, tc.target, ""); w.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %q)", tc.name, w.Code, tc.want, w.Body.String())
		}
	}
	// The graph cap answers 429, telling clients to drop a graph first.
	do(mux, http.MethodPut, "/v1/graphs/a?n=4", "")
	if w := do(mux, http.MethodPut, "/v1/graphs/b?n=4", ""); w.Code != http.StatusTooManyRequests {
		t.Errorf("graph limit: status %d, want 429", w.Code)
	}
}
