// Command gca-serve exposes the connected-components engine zoo as a
// long-running HTTP service backed by internal/service (bounded queue,
// worker pool, content-addressed result cache, admission control,
// graceful drain).
//
//	gca-serve -addr :8080 -workers 4 -queue 256 -cache 512
//
// API:
//
//	POST /v1/components?format=edges|matrix&engine=gca&nocache=1&labels=0
//	    Body is a graph in the "edges" or "matrix" text format of
//	    internal/graph/io.go. Returns the labelling as JSON. A malformed
//	    body or unknown engine/format answers 400, a full queue 429, an
//	    oversized body or graph 413, a dense-only engine asked for a
//	    graph above the dense cutoff 422 (see -dense-cutoff; the error
//	    names the sparse-capable engines), an expired deadline 504, an
//	    open circuit breaker without fallback 503, and a client that
//	    disconnects mid-request 499 (nginx's "client closed request";
//	    only the access log sees it).
//	GET  /v1/stats      JSON metrics snapshot (queue, cache, latencies,
//	    retries, breaker state, fallbacks, injected-fault counters).
//	PUT/GET/DELETE /v1/graphs/{name} · POST/DELETE /v1/graphs/{name}/edges
//	GET /v1/graphs/{name}/components · GET /v1/graphs
//	    The named-graph streaming API (stream.go): long-lived graphs
//	    absorbing edge appends incrementally, with ?epoch=N optimistic
//	    concurrency, deletion-tolerant recompute, and per-registry
//	    admission limits (-stream-* flags; -stream-graphs 0 disables).
//	    Stats surface at /debug/vars under "gcacc_stream".
//	GET  /healthz       liveness probe.
//	GET  /debug/vars    the same snapshot via expvar.
//
// Resilience knobs: -retries/-retry-base bound retry of transient engine
// failures, -breaker/-breaker-cooldown configure the per-engine circuit
// breaker, -fallback degrades to the sequential engine when a breaker is
// open, -degrade-depth demotes jobs to sequential under queue pressure,
// and -max-timeout caps every request's deadline budget. A degraded
// response reports "degraded": true and the engine that actually ran.
//
// Chaos mode (testing the above): -fault injects a deterministic
// service-wide fault schedule (internal/fault spec grammar), and -chaos
// additionally accepts a per-request schedule via the `fault` query
// parameter (rejected with 400 when -chaos is off, so production
// deployments cannot be fault-injected from outside).
//
// SIGINT/SIGTERM drain in-flight jobs before exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gcacc"
	"gcacc/internal/cluster"
	"gcacc/internal/fault"
	"gcacc/internal/graph"
	"gcacc/internal/service"
	"gcacc/internal/stream"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		queueDepth  = flag.Int("queue", 256, "job queue depth (admission bound)")
		workers     = flag.Int("workers", 4, "worker pool size (concurrent engine runs)")
		simWorkers  = flag.Int("sim-workers", 0, "total simulator goroutine budget shared by the pool (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache", 512, "result cache entries (negative disables)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request deadline (0 = none)")
		maxTimeout  = flag.Duration("max-timeout", 0, "cap on every request's deadline budget (0 = none)")
		maxVertices = flag.Int("max-vertices", graph.MaxParseVertices, "largest admitted graph")
		denseCutoff = flag.Int("dense-cutoff", 0, "largest graph a dense-only engine may process (0 = library default, negative disables)")
		maxBody     = flag.Int64("max-body", 64<<20, "largest accepted request body in bytes")

		retries         = flag.Int("retries", 0, "max retries of transient engine failures per request")
		retryBase       = flag.Duration("retry-base", time.Millisecond, "first retry backoff (doubled per retry)")
		breakerN        = flag.Int("breaker", 0, "consecutive failures tripping an engine's circuit breaker (0 = off)")
		breakerCooldown = flag.Duration("breaker-cooldown", 500*time.Millisecond, "open-breaker cooldown before a half-open probe")
		fallback        = flag.Bool("fallback", false, "degrade to the sequential engine when a breaker is open")
		degradeDepth    = flag.Int("degrade-depth", 0, "queue depth at which jobs demote to the sequential engine (0 = off)")

		faultSpec = flag.String("fault", "", "service-wide fault-injection schedule, e.g. seed=7,steperr=0.01,stepdelay=0.05:200us (empty = none)")
		chaos     = flag.Bool("chaos", false, "accept per-request fault schedules via the `fault` query parameter")
		seed      = flag.Int64("seed", 0, "seed for the deterministic retry-backoff jitter")

		streamGraphs   = flag.Int("stream-graphs", 64, "max named streaming graphs (0 disables the /v1/graphs API)")
		streamVertices = flag.Int("stream-max-vertices", 1<<20, "largest named streaming graph")
		streamEdges    = flag.Int("stream-max-edges", 0, "live-edge budget per streaming graph (0 = unbounded)")
		streamBatch    = flag.Int("stream-max-batch", 65536, "largest accepted mutation batch")
		streamEngine   = flag.String("stream-engine", "liutarjan", "recompute engine for streaming graphs")
		streamPeriod   = flag.Int("stream-recompute-period", 0, "force a full recompute every N accepted batches (0 = only after deletions)")

		peersCSV     = flag.String("peers", "", "comma-separated peer base URLs forming the static ring, index = member id (empty = standalone)")
		selfIdx      = flag.Int("self", 0, "this replica's index in -peers")
		clusterMode  = flag.String("cluster-mode", "proxy", "non-owner handling for cluster requests: proxy|redirect|federate")
		peerBudget   = flag.Duration("peer-budget", 100*time.Millisecond, "deadline per peer call before degrading to local compute")
		vnodes       = flag.Int("vnodes", 0, "virtual nodes per ring member (0 = default)")
		batchItems   = flag.Int("batch-items", 256, "largest accepted /v1/components/batch item count")
		batchTickets = flag.Int("batch-tickets", 4, "concurrent batch admission tickets")
	)
	flag.Parse()

	var inj *fault.Injector
	if *faultSpec != "" {
		cfg, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			log.Fatalf("gca-serve: -fault: %v", err)
		}
		inj = fault.New(cfg)
		log.Printf("gca-serve: injecting faults: %s", cfg)
	}

	svc := service.New(service.Config{
		QueueDepth:         *queueDepth,
		Workers:            *workers,
		SimWorkers:         *simWorkers,
		CacheEntries:       *cacheSize,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxVertices:        *maxVertices,
		DenseCutoff:        *denseCutoff,
		ExpvarName:         "gcacc_service",
		Fault:              inj,
		Seed:               *seed,
		RetryMax:           *retries,
		RetryBase:          *retryBase,
		BreakerThreshold:   *breakerN,
		BreakerCooldown:    *breakerCooldown,
		FallbackSequential: *fallback,
		DegradeDepth:       *degradeDepth,
	})

	node, peerURLs, redirect, err := buildCluster(svc, clusterFlags{
		peersCSV:     *peersCSV,
		self:         *selfIdx,
		mode:         *clusterMode,
		peerBudget:   *peerBudget,
		vnodes:       *vnodes,
		batchItems:   *batchItems,
		batchTickets: *batchTickets,
	})
	if err != nil {
		log.Fatalf("gca-serve: cluster: %v", err)
	}

	mux := http.NewServeMux()
	if len(peerURLs) > 1 {
		// Multi-replica: single requests route through the ring (and carry
		// the shard-owner header); peers reach this replica's queue, cache
		// and batch runner on /internal/v1.
		mux.HandleFunc("POST /v1/components", clusterComponentsHandler(node, peerURLs, redirect, *maxBody, *chaos))
	} else {
		mux.HandleFunc("POST /v1/components", componentsHandler(svc, *maxBody, *chaos))
	}
	cluster.RegisterPeerHandlers(mux, node, *maxBody)
	mux.HandleFunc("POST /v1/components/batch", batchHandler(node, *maxBody))
	expvar.Publish("gcacc_cluster", expvar.Func(func() any { return node.Stats() }))
	if *streamGraphs > 0 {
		eng, err := gcacc.ParseEngine(*streamEngine)
		if err != nil {
			log.Fatalf("gca-serve: -stream-engine: %v", err)
		}
		reg := stream.NewRegistry(stream.RegistryConfig{
			MaxGraphs:       *streamGraphs,
			MaxVertices:     *streamVertices,
			MaxEdges:        *streamEdges,
			MaxBatch:        *streamBatch,
			Engine:          eng,
			Workers:         *simWorkers,
			RecomputePeriod: *streamPeriod,
			Fault:           inj,
		})
		newStreamAPI(reg, *maxBody).register(mux)
		expvar.Publish("gcacc_stream", expvar.Func(func() any { return reg.Stats() }))
	}
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, statsResponse{Stats: svc.Stats(), Cluster: node.Stats()})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /debug/vars", expvar.Handler())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	cfg := svc.Config()
	log.Printf("gca-serve: listening on %s (workers=%d sim-workers=%d queue=%d cache=%d engines=%s)",
		*addr, cfg.Workers, cfg.SimWorkers, cfg.QueueDepth, cfg.CacheEntries,
		strings.Join(gcacc.EngineNames(), ","))

	select {
	case err := <-errCh:
		log.Fatalf("gca-serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("gca-serve: shutting down, draining in-flight jobs")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("gca-serve: http shutdown: %v", err)
	}
	svc.Close()
	log.Printf("gca-serve: bye")
}

// componentsResponse is the JSON body of a successful labelling.
type componentsResponse struct {
	N           int    `json:"n"`
	Components  int    `json:"components"`
	Engine      string `json:"engine"`
	Cached      bool   `json:"cached"`
	Coalesced   bool   `json:"coalesced"`
	Degraded    bool   `json:"degraded,omitempty"`
	Retries     int    `json:"retries,omitempty"`
	Generations int    `json:"generations,omitempty"`
	PRAMSteps   int    `json:"pram_steps,omitempty"`
	WaitUS      int64  `json:"wait_us"`
	RunUS       int64  `json:"run_us"`
	Labels      []int  `json:"labels,omitempty"`
}

// parseComponents decodes a POST /v1/components request (query knobs +
// graph body) into a service request. On failure it writes the error
// response and reports ok = false.
func parseComponents(w http.ResponseWriter, r *http.Request, maxBody int64, chaos bool) (service.Request, bool) {
	q := r.URL.Query()
	engineName := q.Get("engine")
	if engineName == "" {
		engineName = "gca"
	}
	eng, err := gcacc.ParseEngine(engineName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return service.Request{}, false
	}

	var reqInj *fault.Injector
	if spec := q.Get("fault"); spec != "" {
		if !chaos {
			writeError(w, http.StatusBadRequest,
				errors.New("per-request fault injection requires the server's -chaos flag"))
			return service.Request{}, false
		}
		cfg, err := fault.ParseSpec(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return service.Request{}, false
		}
		reqInj = fault.New(cfg)
	}

	body := http.MaxBytesReader(w, r.Body, maxBody)
	var g *graph.Graph
	switch format := q.Get("format"); format {
	case "", "edges":
		g, err = graph.ReadEdgeList(body)
	case "matrix":
		g, err = graph.ReadMatrix(body)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (edges|matrix)", format))
		return service.Request{}, false
	}
	if err != nil {
		// MaxBytesReader surfaces through the parser; keep the 413.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return service.Request{}, false
		}
		writeError(w, http.StatusBadRequest, err)
		return service.Request{}, false
	}

	return service.Request{
		Graph:   g,
		Engine:  eng,
		NoCache: q.Get("nocache") == "1" || reqInj != nil,
		Fault:   reqInj,
	}, true
}

// buildComponentsResponse assembles the success body shared by the
// standalone and cluster-routed handlers.
func buildComponentsResponse(n int, res *service.Result, withLabels bool) componentsResponse {
	resp := componentsResponse{
		N:           n,
		Components:  res.Components,
		Engine:      res.Engine,
		Cached:      res.Cached,
		Coalesced:   res.Coalesced,
		Degraded:    res.Degraded,
		Retries:     res.Retries,
		Generations: res.Generations,
		PRAMSteps:   res.PRAMSteps,
		WaitUS:      res.Wait.Microseconds(),
		RunUS:       res.Run.Microseconds(),
	}
	if withLabels {
		resp.Labels = res.Labels
	}
	return resp
}

func componentsHandler(svc *service.Service, maxBody int64, chaos bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, ok := parseComponents(w, r, maxBody, chaos)
		if !ok {
			return
		}
		res, err := svc.Submit(r.Context(), req)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK,
			buildComponentsResponse(req.Graph.N(), res, r.URL.Query().Get("labels") != "0"))
	}
}

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request": the client disconnected before the response was written. The
// stdlib has no constant for it. Nobody receives the response body — the
// code exists so access logs and metrics can tell an abandoned request
// from a server fault (500) or a served timeout (504).
const statusClientClosedRequest = 499

// statusOf maps serving-layer errors onto HTTP status codes — the
// admission contract of the ISSUE: full queue means 429, not queueing
// forever.
func statusOf(err error) int {
	switch {
	case errors.Is(err, service.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, service.ErrDenseOnly):
		// Well-formed request, but the named engine cannot process an
		// input this size: 422, so clients can tell "pick a sparse
		// engine" apart from "shrink the graph" (413).
		return http.StatusUnprocessableEntity
	case errors.Is(err, service.ErrClosed), errors.Is(err, service.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, service.ErrInvalidEngine), errors.Is(err, service.ErrNilGraph):
		return http.StatusBadRequest
	case errors.Is(err, service.ErrEnginePanic):
		return http.StatusInternalServerError
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "gca-serve: encoding response:", err)
	}
}
