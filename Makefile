# Pre-merge gate: `make check` runs everything a PR must pass.
# `go build ./... && go test ./...` remains the quick tier-1 subset.

GO ?= go

.PHONY: all build vet test test-race check bench serve

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The serving layer is concurrency-heavy; its tests (and everything else)
# must stay clean under the race detector.
test-race:
	$(GO) test -race ./...

check: build vet test test-race

bench:
	$(GO) test -bench=. -benchmem ./...

serve:
	$(GO) run ./cmd/gca-serve
