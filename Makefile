# Pre-merge gate: `make check` runs everything a PR must pass.
# `go build ./... && go test ./...` remains the quick tier-1 subset.

GO ?= go

.PHONY: all build vet test test-race lint lint-gcasm fmt-check check verify chaos-smoke stream-smoke cluster-smoke fuzz-smoke bench bench-json bench-smoke serve

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on randomises test and subtest execution order, so tests that
# secretly depend on a sibling running first fail here instead of later.
test:
	$(GO) test -shuffle=on ./...

# The serving layer is concurrency-heavy; its tests (and everything else)
# must stay clean under the race detector.
test-race:
	$(GO) test -race ./...

# Custom stdlib-only analyzers for the model invariants (double-buffer
# discipline, determinism, context plumbing, mutex guards, atomic access
# discipline, pool Close pairing, lock ordering, errcheck).
# See internal/lint and TESTING.md.
lint:
	$(GO) run ./cmd/gca-lint -dir .

# Static verifier for the GCA rule language (internal/gcasm/check): the
# embedded Hirschberg and list-ranking programs under their field
# contracts, then the example programs with the raw n-cell contract.
# See TESTING.md "Static analysis".
lint-gcasm:
	$(GO) run ./cmd/gca-lint -gcasm
	$(GO) run ./cmd/gca-lint -gcasm -cells 8 internal/gcasm/testdata/programs/ring.gca internal/gcasm/testdata/programs/doubling.gca

# gofmt and go vet as a separate fast gate (CI runs it in the lint job).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

check: build vet test test-race lint lint-gcasm chaos-smoke stream-smoke cluster-smoke

# Cross-engine conformance harness (differential + metamorphic + analytic
# oracles over the deterministic corpus), then the sparse engines
# differentially at n = 10⁵. See TESTING.md.
verify:
	$(GO) run ./cmd/gca-verify -n 32 -seed 1
	$(GO) run ./cmd/gca-verify -sparse-n 100000 -seed 1

# Chaos conformance tier: the seeded fault-injection soak under the race
# detector — every successful response under injected step errors,
# delays and stalls must equal union-find ground truth, and the retry/
# breaker/fallback machinery must demonstrably fire. Override
# CHAOS_REQUESTS (and GCACC_CHAOS_N / GCACC_CHAOS_SEED) to scale the
# soak. See TESTING.md "Chaos".
CHAOS_REQUESTS ?= 400
chaos-smoke:
	GCACC_CHAOS_REQUESTS=$(CHAOS_REQUESTS) $(GO) test -race -count=1 -run '^TestChaosSoak$$' ./internal/verify

# Streaming conformance tier: the stream harness (incremental vs
# periodic-full-recompute vs union-find oracle, clean and fault-injected)
# plus the registry soak, both under the race detector, plus a seed-
# corpus replay of the mutation-trace fuzzer. Override GCACC_STREAM_N /
# GCACC_STREAM_SOAK_OPS to scale. See TESTING.md "Stream".
stream-smoke:
	$(GO) test -race -count=1 -run '^TestConformanceStream$$' .
	$(GO) test -race -count=1 -run '^(TestRunStream.*|TestStreamSoak)$$' ./internal/verify
	$(GO) test -count=1 -run '^FuzzMutationTrace$$' ./internal/stream

# Sharded-serving conformance tier: the cluster conformance gate (every
# request through every replica of 1/2/4-replica topologies, labels
# bit-identical to the single-process path) and the cluster chaos soak
# (peer faults, a replica stopped and revived mid-run, concurrent
# clients), both under the race detector. Override GCACC_CLUSTER_REQUESTS
# / GCACC_CLUSTER_N / GCACC_CLUSTER_SEED to scale the soak. See
# TESTING.md "Cluster".
cluster-smoke:
	$(GO) test -race -count=1 -run '^TestConformanceCluster$$' .
	$(GO) test -race -count=1 -run '^TestClusterChaosSoak$$' ./internal/verify

# Mutate each fuzz target briefly on top of the checked-in seed corpora.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzParseEdges$$' -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz='^FuzzParseMatrix$$' -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz='^FuzzAssemble$$' -fuzztime=$(FUZZTIME) ./internal/gcasm
	$(GO) test -run='^$$' -fuzz='^FuzzConformanceEdgeList$$' -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz='^FuzzParseEdgeStream$$' -fuzztime=$(FUZZTIME) ./internal/sparse
	$(GO) test -run='^$$' -fuzz='^FuzzMutationTrace$$' -fuzztime=$(FUZZTIME) ./internal/stream

bench:
	$(GO) test -bench=. -benchmem ./...

# Append a labelled trajectory point (ns/op, B/op, custom metrics) to the
# checked-in BENCH_<stamp>.json so wall-clock history stays comparable
# across PRs. Override LABEL to name the point and BENCHFILE to target an
# existing trajectory. See EXPERIMENTS.md "Wall-clock trajectory".
LABEL ?= local
BENCHFILE ?= BENCH_$(shell date +%Y%m%d).json
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem ./... | $(GO) run ./cmd/gca-benchjson -label $(LABEL) -out $(BENCHFILE)

# One iteration of every benchmark: catches benchmarks that no longer
# compile or crash without paying for a full measurement run (CI gate).
# The second line runs the pass/fail performance gates (internal/core
# bench smoke tests): the kernel fast path must beat the generic
# per-cell path, workers=8 must not be meaningfully slower than
# workers=1, and one full n=1024 run must finish inside a generous
# wall-clock ceiling.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	GCACC_BENCH_SMOKE=1 $(GO) test -count=1 -run '^TestBenchSmoke' -v ./internal/core

serve:
	$(GO) run ./cmd/gca-serve
