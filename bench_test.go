package gcacc

// One benchmark per table and figure of the paper, plus scaling and
// ablation benches. cmd/gca-tables prints the corresponding tables; these
// benches measure the cost of regenerating each artefact and report the
// headline quantity of each experiment via b.ReportMetric.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"math/rand"
	"testing"

	"gcacc/internal/congestion"
	"gcacc/internal/core"
	"gcacc/internal/graph"
	"gcacc/internal/hw"
	"gcacc/internal/msf"
	"gcacc/internal/ncell"
	"gcacc/internal/netsim"
	"gcacc/internal/pram"
	"gcacc/internal/tc"
	"gcacc/internal/trace"
)

// benchGraph builds the standard measurement workload: G(n, 0.5), the
// dense regime in which Hirschberg's algorithm is work-optimal.
func benchGraph(n int) *graph.Graph {
	return graph.Gnp(n, 0.5, rand.New(rand.NewSource(2007)))
}

// BenchmarkFigure2GCAProgram runs the full 12-generation program (the
// state machine of Figure 2) for a sweep of sizes. The 256–1024 tail is
// the scaling regime the active-region scheduler exists for: above
// n=128 the plan-routed kernels and in-place span commits dominate the
// profile, so these points are the ones that move when that machinery
// regresses.
func BenchmarkFigure2GCAProgram(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64, 128, 256, 512, 1024} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var gens int
			for i := 0; i < b.N; i++ {
				res, err := core.ConnectedComponents(g)
				if err != nil {
					b.Fatal(err)
				}
				gens = res.Generations
			}
			b.ReportMetric(float64(gens), "generations")
		})
	}
}

// BenchmarkListing1PRAMReference runs the reference algorithm (Listing 1)
// on the CROW PRAM simulator for the same sweep.
func BenchmarkListing1PRAMReference(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64, 128} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var steps int
			for i := 0; i < b.N; i++ {
				res, err := pram.Hirschberg(g, pram.Options{})
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Costs.Steps
			}
			b.ReportMetric(float64(steps), "pram-steps")
		})
	}
}

// BenchmarkTable1Congestion regenerates Table 1: an instrumented run plus
// per-generation aggregation; the reported metric is the hottest δ.
func BenchmarkTable1Congestion(b *testing.B) {
	for _, n := range []int{16, 64} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var maxDelta int
			for i := 0; i < b.N; i++ {
				rows, err := congestion.MeasureTable1(g)
				if err != nil {
					b.Fatal(err)
				}
				maxDelta = 0
				for _, r := range rows {
					if r.MaxDelta > maxDelta {
						maxDelta = r.MaxDelta
					}
				}
			}
			// Paper: the hottest generation reads one cell n+1 times.
			b.ReportMetric(float64(maxDelta), "max-δ")
		})
	}
}

// BenchmarkTable2Generations regenerates Table 2: the per-step generation
// counts, verified against an executed run.
func BenchmarkTable2Generations(b *testing.B) {
	g := benchGraph(16)
	var executed int
	for i := 0; i < b.N; i++ {
		res, err := core.ConnectedComponents(g)
		if err != nil {
			b.Fatal(err)
		}
		executed = res.Generations
		if executed != core.TotalGenerations(16) {
			b.Fatalf("executed %d generations, formula %d", executed, core.TotalGenerations(16))
		}
	}
	b.ReportMetric(float64(executed), "generations")
}

// BenchmarkGenerationFormulaSweep verifies and times the Section-3 closed
// form 1 + log n (3 log n + 8) across a doubling sweep.
func BenchmarkGenerationFormulaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for n := 2; n <= 1024; n *= 2 {
			logn := core.SubGenerations(n)
			if core.TotalGenerations(n) != 1+logn*(3*logn+8) {
				b.Fatal("formula mismatch")
			}
		}
	}
}

// BenchmarkFigure3AccessPatterns regenerates Figure 3: a fully captured
// run at n = 4 with access-pattern rendering of the first iteration.
func BenchmarkFigure3AccessPatterns(b *testing.B) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	var bytes int
	for i := 0; i < b.N; i++ {
		rec := trace.NewRecorder(0)
		_, err := core.Run(g, core.Options{
			CollectStats:    true,
			CapturePointers: true,
			Observer:        rec,
		})
		if err != nil {
			b.Fatal(err)
		}
		bytes = 0
		for _, st := range rec.Steps() {
			if st.Ctx.Iteration > 0 {
				break
			}
			bytes += len(trace.RenderAccessGrid(st, 5, 4))
		}
	}
	b.ReportMetric(float64(bytes), "rendered-bytes")
}

// BenchmarkSynthesisModel regenerates the Section-4 synthesis row and the
// scaling prediction.
func BenchmarkSynthesisModel(b *testing.B) {
	var les int
	for i := 0; i < b.N; i++ {
		for n := 4; n <= 512; n *= 2 {
			s := hw.Estimate(n)
			if n == 16 {
				les = s.LogicElements
			}
		}
	}
	if les != hw.PaperReference().LogicElements {
		b.Fatalf("model drifted from the published point: %d", les)
	}
	b.ReportMetric(float64(les), "LEs@n=16")
}

// BenchmarkCongestionModels is the Section-4 ablation: cycle cost of the
// same run under unit/replicated/tree/serial read implementations.
func BenchmarkCongestionModels(b *testing.B) {
	g := benchGraph(32)
	res, err := core.Run(g, core.Options{CollectStats: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []congestion.Model{congestion.Unit, congestion.Replicated, congestion.Tree, congestion.Serial} {
		b.Run(m.String(), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles = congestion.Cycles(res.Records, m)
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkBrentSimulation evaluates the Section-1/3 discussion: the PRAM
// algorithm under Brent's theorem with limited physical processors.
func BenchmarkBrentSimulation(b *testing.B) {
	g := benchGraph(32)
	for _, p := range []int{0, 64, 16, 4} {
		name := "unlimited"
		if p > 0 {
			name = fmt.Sprintf("p=%d", p)
		}
		b.Run(name, func(b *testing.B) {
			var time int
			for i := 0; i < b.N; i++ {
				res, err := pram.Hirschberg(g, pram.Options{PhysicalProcessors: p})
				if err != nil {
					b.Fatal(err)
				}
				time = res.Costs.Time
			}
			b.ReportMetric(float64(time), "brent-time")
		})
	}
}

// BenchmarkGCAvsBaselines compares the simulated parallel models against
// the sequential baselines on the same dense workload — the cost
// discussion of Section 3 (n² cells vs sequential Θ(n²) time).
func BenchmarkGCAvsBaselines(b *testing.B) {
	n := 64
	g := benchGraph(n)
	b.Run("gca", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ConnectedComponents(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pram.Hirschberg(g, pram.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unionfind", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.ConnectedComponentsUnionFind(g)
		}
	})
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.ConnectedComponentsBFS(g)
		}
	})
}

// BenchmarkEngineWorkers measures the simulator's multicore scaling (the
// engine, not the model): one full program run under different worker
// counts, at the historical n=128 point and at the n=1024 scale the
// active-region scheduler targets. ReportAllocs puts allocs/op into the
// committed trajectory (gca-benchjson), pinning the per-worker
// allocation flatness the global stepping pool guarantees: the curve
// must stay level as workers grow, not climb.
func BenchmarkEngineWorkers(b *testing.B) {
	for _, n := range []int{128, 1024} {
		g := benchGraph(n)
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Run(g, core.Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDesignSpaceNCell is the Section-3 design-space ablation: the
// n-cell alternative (Θ(n log n) generations, Θ(n) cells) against the
// paper's n²-cell design (Θ(log² n) generations).
func BenchmarkDesignSpaceNCell(b *testing.B) {
	for _, n := range []int{16, 64} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("ncell/n=%d", n), func(b *testing.B) {
			var gens int
			for i := 0; i < b.N; i++ {
				res, err := ncell.ConnectedComponents(g)
				if err != nil {
					b.Fatal(err)
				}
				gens = res.Generations
			}
			b.ReportMetric(float64(gens), "generations")
		})
		b.Run(fmt.Sprintf("n2cell/n=%d", n), func(b *testing.B) {
			var gens int
			for i := 0; i < b.N; i++ {
				res, err := core.ConnectedComponents(g)
				if err != nil {
					b.Fatal(err)
				}
				gens = res.Generations
			}
			b.ReportMetric(float64(gens), "generations")
		})
	}
}

// BenchmarkHardwareCellArray runs the RTL-level cell-array model of the
// Section-4 hardware (static wiring, extended cells).
func BenchmarkHardwareCellArray(b *testing.B) {
	for _, n := range []int{16, 64} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				ca := hw.NewCellArray(g)
				if _, err := ca.Run(); err != nil {
					b.Fatal(err)
				}
				cycles = ca.Cycles
			}
			b.ReportMetric(float64(cycles), "hw-cycles")
		})
	}
}

// BenchmarkVerilogEmission times generating the Section-4 Verilog design.
func BenchmarkVerilogEmission(b *testing.B) {
	g := benchGraph(16)
	var bytes int
	for i := 0; i < b.N; i++ {
		bytes = len(hw.GenerateVerilog(g))
	}
	b.ReportMetric(float64(bytes), "verilog-bytes")
}

// BenchmarkButterflyCombining reproduces the Section-1 concurrent-read
// experiment: an all-to-one batch with and without Ranade-style combining.
func BenchmarkButterflyCombining(b *testing.B) {
	bf := netsim.NewButterfly(6)
	reqs := make([]netsim.Request, bf.Rows())
	for i := range reqs {
		reqs[i] = netsim.Request{Source: i, Dest: 0}
	}
	for _, combining := range []bool{false, true} {
		name := "plain"
		if combining {
			name = "combining"
		}
		b.Run(name, func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				st, err := bf.Route(reqs, combining)
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "net-cycles")
		})
	}
}

// BenchmarkUniversalHashing measures the hashed memory-mapping congestion
// of the Section-1 discussion.
func BenchmarkUniversalHashing(b *testing.B) {
	m := 256
	addrs := make([]int, m)
	for i := range addrs {
		addrs[i] = 7919 * i
	}
	var avg float64
	for i := 0; i < b.N; i++ {
		avg = netsim.AverageMaxLoad(addrs, m, 10, 1)
	}
	b.ReportMetric(avg, "avg-max-load")
}

// BenchmarkTransitiveClosure compares the three closure engines — the
// companion problem of Hirschberg's original paper, run on the
// two-handed GCA, the CROW PRAM and the word-parallel Warshall baseline.
func BenchmarkTransitiveClosure(b *testing.B) {
	n := 32
	g := benchGraph(n)
	b.Run("gca-two-handed", func(b *testing.B) {
		var gens int
		for i := 0; i < b.N; i++ {
			res, err := tc.GCA(g, tc.GCAOptions{})
			if err != nil {
				b.Fatal(err)
			}
			gens = res.Generations
		}
		b.ReportMetric(float64(gens), "generations")
	})
	b.Run("pram-squaring", func(b *testing.B) {
		var steps int
		for i := 0; i < b.N; i++ {
			res, err := tc.PRAM(g)
			if err != nil {
				b.Fatal(err)
			}
			steps = res.Costs.Steps
		}
		b.ReportMetric(float64(steps), "pram-steps")
	})
	b.Run("warshall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tc.Warshall(g)
		}
	})
}

// BenchmarkBoruvkaMSF runs the minimum-spanning-forest extension: the
// paper's mapping recipe applied to Borůvka, on the GCA and on the PRAM,
// against the sequential Kruskal baseline.
func BenchmarkBoruvkaMSF(b *testing.B) {
	n := 32
	wg := graph.RandomWeighted(n, 0.5, rand.New(rand.NewSource(2007)))
	b.Run("gca", func(b *testing.B) {
		var gens int
		for i := 0; i < b.N; i++ {
			res, err := msf.Run(wg, msf.Options{})
			if err != nil {
				b.Fatal(err)
			}
			gens = res.Generations
		}
		b.ReportMetric(float64(gens), "generations")
	})
	b.Run("pram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pram.Boruvka(wg, pram.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kruskal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.KruskalMSF(wg)
		}
	})
}

// BenchmarkInstrumentationOverhead quantifies the cost of Table-1
// instrumentation relative to a bare run.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	g := benchGraph(64)
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(g, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stats", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(g, core.Options{CollectStats: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stats+pointers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(g, core.Options{CollectStats: true, CapturePointers: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
