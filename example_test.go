package gcacc_test

import (
	"fmt"

	"gcacc"
)

// The package-level example: label the connected components of a small
// graph on the simulated Global Cellular Automaton.
func Example() {
	g := gcacc.NewGraph(6)
	g.AddEdge(0, 2)
	g.AddEdge(2, 4)
	g.AddEdge(1, 5)

	labels, err := gcacc.ConnectedComponents(g)
	if err != nil {
		panic(err)
	}
	fmt.Println(labels)
	// Output: [0 1 0 3 0 1]
}

// Use options to pick the PRAM reference engine and inspect the report.
func ExampleConnectedComponentsWith() {
	g := gcacc.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)

	rep, err := gcacc.ConnectedComponentsWith(g, gcacc.Options{Engine: gcacc.EnginePRAM})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Labels, rep.Components)
	// Output: [0 0 2 2] 2
}

// The closed-form generation count of the paper's Section 3.
func ExampleTotalGenerations() {
	fmt.Println(gcacc.TotalGenerations(16))
	// Output: 81
}

// Transitive closure on the two-handed GCA.
func ExampleTransitiveClosure() {
	g := gcacc.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)

	c, err := gcacc.TransitiveClosure(g)
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Reachable(0, 2), c.Reachable(0, 3))
	// Output: true false
}
